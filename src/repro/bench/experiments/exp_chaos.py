"""T9 — the availability gauntlet: the gateway under injected faults.

T8 proved the gateway is *fair* under overload; T9 asks the harder
question: is it *available* under failure?  The experiment boots the
daemon under a :class:`~repro.gateway.supervisor.GatewaySupervisor`,
offers a closed-loop multi-tenant storm through self-healing
:class:`~repro.gateway.client.GatewayClient` channels, and — mid-storm
— activates a :class:`~repro.faults.FaultPlan` drawn from the gateway
fault family: connections reset, frames sent by halves, replies
dropped or replaced with garbage, fresh connections refused, and the
daemon itself killed with requests in flight.

The contract under test is the cooperative one the stack already
assumes everywhere else: shed and rate-limited admissions back off and
retry (backpressure is not unavailability), and a request that dies of
a *fault* is retried a bounded number of times against the self-healed
channel.  A request counts as **failed** only when the entire recovery
stack — client reconnect with re-auth, supervisor restart, driver
retry — could not serve it.  Three gates:

* **availability** — served / (served + failed) over the non-shed
  traffic must stay >= 0.99 (committed baseline, tolerance 0.01);
* **zero orphans** — after teardown no child process the storm created
  may still be running (counted via /proc, not trusted accounting);
* **zero leaked fds** — the process's fd table must return to its
  pre-storm size.

``daemon_restarts`` must be >= 1 (the kill actually happened and the
supervisor actually recovered) or the gauntlet is vacuous.
"""

from __future__ import annotations

import gc
import os
import shutil
import tempfile
import threading
import time
from typing import List, Optional

from ...errors import (BenchError, GatewayError, Overloaded, RateLimited,
                       SpawnError)
from ...faults import FAULTS, FaultPlan
from ...gateway import (GatewayClient, GatewayConfig, GatewaySupervisor,
                        TenantConfig)
from ..render import render_table
from ..stats import format_ns, percentile
from .base import ExperimentResult, register

#: The child every request spawns (cheap and uniform, as in T8).
CHAOS_CHILD = ("/bin/true",)


def _open_fds() -> int:
    """The process's current fd-table size, via /proc."""
    return len(os.listdir("/proc/self/fd"))


def _live_children() -> List[int]:
    """Pids whose parent is this process, via /proc (zombies included)."""
    me = os.getpid()
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "r") as handle:
                stat = handle.read()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        if ppid == me:
            pids.append(int(entry))
    return pids


def _reap_zombies(pids: List[int]) -> List[int]:
    """Claim exited-but-unwaited children; return the pids still live.

    A ``/bin/true`` that died together with its waiter (the crashed
    daemon) is not an orphaned *process* — it is an unclaimed exit
    status, and this process is its parent, so claim it here.  A child
    actually still running stays in the returned list and trips the
    orphan gate.
    """
    alive = []
    for pid in pids:
        try:
            with open(f"/proc/{pid}/stat", "r") as handle:
                state = handle.read().rsplit(")", 1)[1].split()[0]
        except (OSError, IndexError):
            continue  # raced its own exit
        if state == "Z":
            try:
                if os.waitpid(pid, os.WNOHANG)[0] == pid:
                    continue
            except OSError:
                continue
        alive.append(pid)
    return alive


def _gauntlet_plan(threads: int, kill_after: int) -> FaultPlan:
    """The default chaos schedule: every gateway fault kind, staggered.

    ``after`` counters are in *point fires*: ``gateway.frame`` fires
    per outgoing client frame (a request is a spawn frame plus a wait
    frame), ``gateway.accept`` per accepted connection (the first
    ``threads`` fires are the storm's initial dials, so the refusals
    are armed past them to land on reconnect dials), ``gateway.daemon``
    per dispatched frame — ``kill_after`` puts the crash mid-storm.
    """
    return (FaultPlan()
            .add("conn_reset", after=20, times=3)
            .add("partial_frame", after=45, times=2)
            .add("stall_conn", after=70, times=2, seconds=0.02)
            .add("drop_reply", after=30, times=2)
            .add("garbage_reply", after=60, times=2)
            .add("refuse_accept", after=threads, times=2)
            .add("kill_daemon", after=kill_after, times=1))


class _ChaosLoad:
    """One tenant's ledger through the gauntlet."""

    def __init__(self, name: str):
        self.name = name
        self.attempted = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.retried = 0
        self.reconnects = 0
        self.samples: List[float] = []
        self.lock = threading.Lock()


def _backoff(retry_after: Optional[float]) -> None:
    time.sleep(min(max(retry_after or 0.0, 0.001), 0.05))


def _drive_chaos(load: _ChaosLoad, address: str, token: str,
                 barrier: threading.Barrier, duration: float,
                 request_retries: int, client_timeout: float) -> None:
    """One closed-loop driver: spawn, reap, repeat — through faults.

    Backpressure (shed / rate-limited) backs off and re-offers without
    consuming a retry; a fault casualty (typed gateway or spawn error,
    from either the spawn or its wait) consumes one of
    ``request_retries`` before the request is declared failed.
    """
    try:
        client = GatewayClient(
            address, tenant=load.name, token=token,
            timeout=client_timeout, reconnect=True, max_reconnects=8,
        ).connect()
    except GatewayError:
        with load.lock:
            load.failed += 1
        barrier.wait()
        return
    try:
        barrier.wait()
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            with load.lock:
                load.attempted += 1
            started = time.perf_counter_ns()
            tries = 0
            while True:
                try:
                    child = client.spawn(CHAOS_CHILD)
                    code = child.wait(timeout=30)
                except (Overloaded, RateLimited) as exc:
                    with load.lock:
                        load.shed += 1
                    _backoff(exc.retry_after)
                    if time.perf_counter() >= deadline:
                        # Withdraw the request rather than blaming the
                        # clock's expiry on availability.
                        with load.lock:
                            load.attempted -= 1
                        break
                    continue
                except (GatewayError, SpawnError):
                    tries += 1
                    if tries > request_retries:
                        with load.lock:
                            load.failed += 1
                        break
                    with load.lock:
                        load.retried += 1
                    time.sleep(0.01)
                    continue
                with load.lock:
                    if code == 0:
                        load.completed += 1
                        load.samples.append(
                            float(time.perf_counter_ns() - started))
                    else:
                        load.failed += 1
                break
    finally:
        with load.lock:
            load.reconnects += client.reconnects
        client.close()


@register("t9-chaos",
          "Gateway availability under injected faults",
          "§5 spawn as a service",
          quick_kwargs={"duration": 2.0, "kill_after": 120})
def run_t9_chaos(tenant_count: int = 3,
                 threads_per_tenant: int = 4,
                 duration: float = 6.0,
                 max_inflight: int = 16,
                 max_queue: int = 64,
                 request_retries: int = 4,
                 client_timeout: float = 5.0,
                 kill_after: int = 300,
                 plan: Optional[FaultPlan] = None) -> ExperimentResult:
    """Offer a storm, injure the gateway, gate what the clients saw.

    ``tenant_count * threads_per_tenant`` closed-loop drivers run for
    ``duration`` seconds while the gauntlet plan (or ``plan``) fires;
    the summary row (keyed on ``concurrency``) carries ``availability``
    for ``repro-bench compare`` plus the orphan and fd ledgers.
    """
    threads = tenant_count * threads_per_tenant
    active_plan = plan if plan is not None else _gauntlet_plan(
        threads, kill_after)
    tokens = {f"tenant-{i}": f"secret-{i}" for i in range(tenant_count)}
    tenants = {
        name: TenantConfig(name=name, token=token, max_queue=max_queue,
                           strategy="posix_spawn")
        for name, token in tokens.items()}
    tempdir = tempfile.mkdtemp(prefix="repro-bench-t9-")
    address = os.path.join(tempdir, "gateway.sock")

    fds_before = _open_fds()
    children_before = set(_live_children())
    supervisor = GatewaySupervisor(
        GatewayConfig(unix_path=address, tenants=tenants,
                      max_inflight=max_inflight, drain_grace=5.0),
        check_interval=0.05, ping_timeout=2.0,
        restart_backoff=0.02, orphan_grace=5.0).start()
    loads = [_ChaosLoad(name) for name in tenants]
    try:
        barrier = threading.Barrier(threads + 1)
        workers = [
            threading.Thread(
                target=_drive_chaos,
                args=(load, address, tokens[load.name], barrier, duration,
                      request_retries, client_timeout),
                name=f"t9-{load.name}-{worker}")
            for load in loads for worker in range(threads_per_tenant)]
        for worker in workers:
            worker.start()
        with FAULTS.active(active_plan):
            barrier.wait()
            started = time.perf_counter()
            for worker in workers:
                worker.join()
            wall = time.perf_counter() - started
        restarts = supervisor.restarts
        orphans_reaped = supervisor.orphans_reaped
        gave_up = supervisor.gave_up
    finally:
        supervisor.stop()
        shutil.rmtree(tempdir, ignore_errors=True)

    # Post-teardown ledgers, via /proc rather than trusted counters.
    # Children the daemon spawned exit on their own (the child is
    # /bin/true); give stragglers a moment before declaring orphans.
    settle = time.monotonic() + 5.0
    while True:
        # A crashed daemon's event loop dies in reference cycles; its
        # sockets are reclaimable, just not yet reclaimed.  Collect
        # each pass so the ledgers converge on fds *nothing* can ever
        # close and children actually still running — real leaks and
        # real orphans — not collector or thread-exit latency.
        gc.collect()
        orphans = _reap_zombies([pid for pid in _live_children()
                                 if pid not in children_before])
        leaked_fds = max(0, _open_fds() - fds_before)
        if (not orphans and not leaked_fds) \
                or time.monotonic() >= settle:
            break
        time.sleep(0.05)

    rows = []
    all_samples: List[float] = []
    for load in loads:
        all_samples.extend(load.samples)
        rows.append({
            "section": "tenant", "tenant": load.name,
            "attempted": load.attempted, "completed": load.completed,
            "shed": load.shed, "failed": load.failed,
            "retried": load.retried, "reconnects": load.reconnects,
            "p95_ns": (percentile(load.samples, 0.95)
                       if load.samples else None),
        })
    completed = sum(load.completed for load in loads)
    failed = sum(load.failed for load in loads)
    if not completed:
        raise BenchError("no request survived the gauntlet — the gateway "
                         "never served anything")
    summary = {
        "section": "chaos", "concurrency": threads,
        "tenants": tenant_count,
        "attempted": sum(load.attempted for load in loads),
        "completed": completed, "failed": failed,
        "shed": sum(load.shed for load in loads),
        "retried": sum(load.retried for load in loads),
        "availability": completed / float(completed + failed),
        "per_second": completed / max(wall, 1e-9),
        "reconnects": sum(load.reconnects for load in loads),
        "daemon_restarts": restarts,
        "supervisor_gave_up": gave_up,
        "orphans": len(orphans),
        "orphans_reaped": orphans_reaped,
        "leaked_fds": leaked_fds,
        "faults": len(active_plan),
        "p95_ns": percentile(all_samples, 0.95),
        "p99_ns": percentile(all_samples, 0.99),
    }
    rows.append(summary)

    tenant_table = render_table(
        ["tenant", "completed", "failed", "shed", "retried", "reconnects",
         "p95"],
        [[row["tenant"], str(row["completed"]), str(row["failed"]),
          str(row["shed"]), str(row["retried"]), str(row["reconnects"]),
          format_ns(row["p95_ns"]) if row["p95_ns"] else "-"]
         for row in rows if row["section"] == "tenant"],
        title=f"T9a: per-tenant service through the gauntlet "
              f"({threads} drivers, {len(active_plan)} scheduled faults)")
    summary_table = render_table(
        ["availability", "failed", "retried", "restarts", "orphans",
         "leaked fds", "p99"],
        [[f"{summary['availability']:.4f}", str(failed),
          str(summary["retried"]), str(restarts), str(summary["orphans"]),
          str(leaked_fds), format_ns(summary["p99_ns"])]],
        title="T9b: what the chaos cost")
    return ExperimentResult(
        "t9-chaos", "Gateway availability under injected faults", rows,
        f"{tenant_table}\n\n{summary_table}", _notes(summary))


def _notes(summary: dict) -> str:
    recovered = ("the daemon was killed and the supervisor restarted it "
                 f"{summary['daemon_restarts']}x"
                 if summary["daemon_restarts"]
                 else "WARNING: the daemon was never restarted — the "
                      "kill_daemon fault did not land (raise duration or "
                      "lower kill_after)")
    hygiene = ("no orphaned children, no leaked fds"
               if not (summary["orphans"] or summary["leaked_fds"])
               else f"WARNING: {summary['orphans']} orphaned children, "
                    f"{summary['leaked_fds']} leaked fds after teardown")
    return (f"{summary['concurrency']} closed-loop drivers pushed "
            f"{summary['attempted']} requests through "
            f"{summary['faults']} scheduled faults; availability "
            f"{summary['availability']:.4f} (gate floor 0.99) with "
            f"{summary['failed']} hard failures after "
            f"{summary['retried']} driver retries and "
            f"{summary['reconnects']} client reconnects. {recovered}; "
            f"{hygiene}. recovery cost tail latency, not availability: "
            f"p99 {format_ns(summary['p99_ns'])} against p95 "
            f"{format_ns(summary['p95_ns'])}.")
