"""F2 and the ablations A1/A2: scaling, cost anatomy, ASLR inheritance."""

from __future__ import annotations

import textwrap

from ..render import render_series_chart, render_table
from ..simbench import (a1_ablation, a2_aslr, a3_emulation, a4_fdtable,
                        f2_scaling)
from ..stats import format_bytes, format_ns
from ..workloads import Workloads
from .base import ExperimentResult, register


@register("f2-scaling", "fork doesn't scale: VM-lock contention",
          "prose claim", quick_kwargs={"thread_counts": (1, 4, 16),
                                       "ops_per_thread": 50})
def run_f2_scaling(thread_counts=(1, 2, 4, 8, 16, 32),
                   ops_per_thread: int = 200) -> ExperimentResult:
    """Fault throughput vs threads: one mmap_sem vs per-VMA locks."""
    rows = f2_scaling(thread_counts, ops_per_thread=ops_per_thread)
    table = render_table(
        ["threads", "one-lock ops/s", "per-VMA ops/s",
         "mean wait (one lock)", "work stalled by 1 fork of 1GiB"],
        [[r["threads"], f"{r['one_lock_ops_per_sec']:.0f}",
          f"{r['per_vma_ops_per_sec']:.0f}",
          format_ns(r["one_lock_mean_wait_ns"]),
          format_ns(r["fork_stall_ns"])] for r in rows],
        title="F2: address-space operation throughput vs thread count")
    chart = render_series_chart(
        [r["threads"] for r in rows],
        {"one_lock": [r["one_lock_ops_per_sec"] for r in rows],
         "per_vma": [r["per_vma_ops_per_sec"] for r in rows]},
        x_label="threads", y_label="ops/s",
        title="F2 (one lock saturates; per-VMA locks scale)")
    saturated = rows[-1]["one_lock_ops_per_sec"]
    scaled = rows[-1]["per_vma_ops_per_sec"]
    notes = (f"at {rows[-1]['threads']} threads the single VM lock caps "
             f"throughput at {saturated:.0f} ops/s while per-VMA locking "
             f"reaches {scaled:.0f} ({scaled / saturated:.1f}x); a single "
             f"concurrent fork stalls "
             f"{format_ns(rows[-1]['fork_stall_ns'])} of fault work.")
    return ExperimentResult("f2-scaling", "VM-lock scaling", rows,
                            table + "\n\n" + chart, notes)


@register("a1-ablation", "Where fork's cost lives", "ablation (ours)",
          quick_kwargs={"size": 256 << 20})
def run_a1_ablation(size: int = 1 << 30) -> ExperimentResult:
    """Fork cost with one mechanism's price removed at a time."""
    rows = a1_ablation(size)
    baseline = rows[0]["fork_ns"]
    table = render_table(
        ["variant", "fork cost", "vs full model"],
        [[r["variant"], format_ns(r["fork_ns"]),
          f"{r['fork_ns'] / baseline:.2f}x"] for r in rows],
        title=f"A1: anatomy of a fork at {size >> 20} MiB dirty")
    by_name = {r["variant"]: r["fork_ns"] for r in rows}
    notes = textwrap.dedent(f"""\
        page-table copying dominates ({format_ns(baseline)} full vs
        {format_ns(by_name['no PTE-copy cost'])} without PTE-copy cost);
        eager copy costs {by_name['eager copy (no COW)'] / baseline:.1f}x
        the COW fork (why BSD added COW); 2 MiB pages cut the walk 512x
        ({format_ns(by_name['2 MiB huge pages'])}).""").replace("\n", " ")
    return ExperimentResult("a1-ablation", "Fork cost anatomy", rows,
                            table, notes)


@register("a3-emulation", "The fork-emulation tax (WSL/Zircon story)",
          "'implementing fork' section",
          quick_kwargs={"sizes": [16 << 20, 128 << 20]})
def run_a3_emulation(sizes=None) -> ExperimentResult:
    """Native COW fork vs fork emulated on explicit construction."""
    rows = a3_emulation(sizes)
    table = render_table(
        ["parent dirty size", "native fork", "emulated fork", "slowdown",
         "native RSS growth", "emulated RSS growth"],
        [[format_bytes(r["ballast_bytes"]), format_ns(r["native_ns"]),
          format_ns(r["emulated_ns"]), f"{r['slowdown']:.1f}x",
          f"{r['native_rss_growth_pages']}p",
          f"{r['emulated_rss_growth_pages']}p"] for r in rows],
        title="A3: fork emulated on an explicit-construction kernel")
    last = rows[-1]
    notes = (f"at {format_bytes(last['ballast_bytes'])} the emulation is "
             f"{last['slowdown']:.1f}x slower than native COW fork and "
             f"immediately consumes {last['emulated_rss_growth_pages']} "
             f"pages where COW consumes {last['native_rss_growth_pages']} "
             f"— retrofitted fork is pre-COW Unix all over again, the "
             f"paper's 'fork infects OS design' point.")
    return ExperimentResult("a3-emulation", "Fork emulation tax", rows,
                            table, notes)


@register("a4-fdtable", "Creation cost vs descriptor count",
          "fd-inheritance argument",
          quick_kwargs={"fd_counts": (0, 256), "real_fd_counts": (0, 256),
                        "repeats": 6})
def run_a4_fdtable(fd_counts=(0, 64, 1024, 16384),
                   real_fd_counts=(0, 256, 2048),
                   repeats: int = 12) -> ExperimentResult:
    """The descriptor-table dimension of process creation, sim + real."""
    sim_rows = a4_fdtable(fd_counts)
    rows = [{"side": "sim", "fds": r["fds"],
             **{f"{m}_ns": v for m, v in r["results"].items()}}
            for r in sim_rows]
    with Workloads() as workloads:
        for nfds in real_fd_counts:
            summary = workloads.measure_with_fds("fork_only", nfds,
                                                 repeats=repeats)
            rows.append({"side": "real", "fds": nfds,
                         "fork_ns": summary.median})
    sim_table = render_table(
        ["fds", "fork", "spawn", "xproc"],
        [[r["fds"], format_ns(r["fork_ns"]), format_ns(r["spawn_ns"]),
          format_ns(r["xproc_ns"])] for r in rows if r["side"] == "sim"],
        title="A4 (sim): creation cost vs parent descriptor count")
    real_table = render_table(
        ["fds", "bare fork (real OS)"],
        [[r["fds"], format_ns(r["fork_ns"])]
         for r in rows if r["side"] == "real"],
        title="A4 (real): fork latency while holding N descriptors")
    big = [r for r in rows if r["side"] == "sim"][-1]
    small = [r for r in rows if r["side"] == "sim"][0]
    notes = (f"fork and spawn both inherit the table, so both scale "
             f"with descriptor count (fork {small['fork_ns']:.0f} -> "
             f"{big['fork_ns']:.0f} ns across the sim sweep); the "
             f"cross-process API grants descriptors individually and "
             f"stays flat — inheritance, not copying, is the design "
             f"decision being priced.")
    return ExperimentResult("a4-fdtable", "Descriptor-table cost", rows,
                            sim_table + "\n\n" + real_table, notes)


@register("a2-aslr", "ASLR inheritance across creation APIs",
          "security argument", quick_kwargs={"children": 8})
def run_a2_aslr(children: int = 32) -> ExperimentResult:
    """Layout entropy of children per mechanism (Blind-ROP argument)."""
    rows = a2_aslr(children)
    table = render_table(
        ["mechanism", "children", "identical to parent",
         "distinct layouts", "entropy bits"],
        [[r["mechanism"], r["children"], r["identical_to_parent"],
          r["distinct_layouts"], f"{r['entropy_bits']:.1f}"] for r in rows],
        title="A2: address-space layout inheritance")
    fork_row = next(r for r in rows if r["mechanism"] == "fork")
    notes = (f"every one of {fork_row['children']} forked children shares "
             "the parent's exact layout (0 bits of fresh entropy): "
             "crash-probing any worker defeats ASLR for all of them, "
             "which is the paper's Blind-ROP point.  spawn and xproc "
             "children are each freshly randomised.")
    return ExperimentResult("a2-aslr", "ASLR inheritance", rows, table,
                            notes)
