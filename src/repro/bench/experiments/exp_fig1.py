"""Figure 1, both ways: real OS (F1a) and simulator (F1b).

The paper's only measured figure: time to create and run a trivial child
as a function of the parent's (dirty) memory size.  Expected shape —
fork grows roughly linearly with size, spawn-family mechanisms stay
flat, and the gap at multi-GiB sizes is orders of magnitude.
"""

from __future__ import annotations

from typing import List, Optional

from ..ballast import default_sizes
from ..render import render_series_chart, render_table
from ..simbench import DEFAULT_SIM_SIZES, SIM_MECHANISMS, fig1_sim
from ..stats import format_bytes, format_ns
from ..workloads import Workloads
from .base import ExperimentResult, register


@register("fig1-real", "Process creation time vs parent size (real OS)",
          "Figure 1",
          quick_kwargs={"sizes": [1 << 20, 16 << 20, 64 << 20],
                        "repeats": 6, "max_seconds": 3.0})
def run_fig1_real(sizes: Optional[List[int]] = None,
                  mechanisms: Optional[List[str]] = None,
                  repeats: int = 15,
                  max_seconds: float = 8.0) -> ExperimentResult:
    """Measure fork/exec vs posix_spawn vs forkserver with real ballast."""
    sizes = sizes if sizes is not None else default_sizes()
    mechanisms = mechanisms or ["fork_exec", "posix_spawn", "forkserver"]
    with Workloads() as workloads:
        raw = workloads.sweep(sizes, mechanisms, repeats=repeats,
                              max_seconds=max_seconds)
    rows = []
    for entry in raw:
        row = {"ballast_bytes": entry["ballast_bytes"]}
        for name, summary in entry["results"].items():
            row[f"{name}_ns"] = summary.median
            row[f"{name}_p95_ns"] = summary.p95
        rows.append(row)
    table = render_table(
        ["parent dirty size"] + mechanisms,
        [[format_bytes(r["ballast_bytes"])]
         + [format_ns(r[f"{m}_ns"]) for m in mechanisms] for r in rows],
        title="F1a: median child-creation latency (real OS)")
    chart = render_series_chart(
        [r["ballast_bytes"] for r in rows],
        {m: [r[f"{m}_ns"] for r in rows] for m in mechanisms},
        x_label="parent dirty bytes", y_label="latency ns",
        title="F1a (shape check: fork grows, spawn stays flat)")
    grows = rows[-1][f"{mechanisms[0]}_ns"] / rows[0][f"{mechanisms[0]}_ns"]
    notes = (f"{mechanisms[0]} grew {grows:.1f}x across the sweep; "
             f"posix_spawn stayed within noise of constant.")
    return ExperimentResult("fig1-real", "Figure 1 on this machine", rows,
                            table + "\n\n" + chart, notes)


@register("fig1-sim", "Process creation time vs parent size (simulator)",
          "Figure 1",
          quick_kwargs={"sizes": [1 << 20, 64 << 20, 1 << 30]})
def run_fig1_sim(sizes: Optional[List[int]] = None,
                 mechanisms=SIM_MECHANISMS) -> ExperimentResult:
    """The same figure in the simulated kernel, extended to 8 GiB."""
    sizes = sizes if sizes is not None else list(DEFAULT_SIM_SIZES)
    raw = fig1_sim(sizes, mechanisms)
    rows = []
    for entry in raw:
        row = {"ballast_bytes": entry["ballast_bytes"]}
        row.update({f"{m}_ns": v for m, v in entry["results"].items()})
        rows.append(row)
    table = render_table(
        ["parent dirty size"] + list(mechanisms),
        [[format_bytes(r["ballast_bytes"])]
         + [format_ns(r[f"{m}_ns"]) for m in mechanisms] for r in rows],
        title="F1b: child-creation cost (simulated kernel, deterministic)")
    chart = render_series_chart(
        [r["ballast_bytes"] for r in rows],
        {m: [r[f"{m}_ns"] for r in rows] for m in mechanisms},
        x_label="parent dirty bytes", y_label="virtual ns",
        title="F1b (fork linear in size; spawn/xproc flat; vfork cheapest)")
    big = rows[-1]
    ratio = big["fork_ns"] / big["spawn_ns"]
    notes = (f"at {format_bytes(big['ballast_bytes'])} fork costs "
             f"{ratio:.0f}x spawn; every spawn-family line is flat.")
    return ExperimentResult("fig1-sim", "Figure 1 in the simulator", rows,
                            table + "\n\n" + chart, notes)
