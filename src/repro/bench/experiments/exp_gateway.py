"""T8 — the spawn gateway: multi-tenant fairness under overload.

The paper's closing argument is that process creation should be a
*service* with a clean API, not a syscall with fifty years of baggage.
T5-T7 built that service inside one process; T8 pushes it across a
socket: N tenants, each with its own auth token, bounded queue and
weighted-fair share, all hammering one daemon that multiplexes them
over the same warm pools.

The measurement deliberately offers more load than the daemon will
take: each tenant drives more closed-loop client threads than its
queue will hold (``threads_per_tenant > max_queue``) against a small
``max_inflight``, so three things become visible at once:

* **fairness** — with equal weights, the max/min ratio of per-tenant
  completed throughput should stay near 1; the committed baseline
  gates ``fairness_score`` (= 1/ratio, higher is better) at 0.5, i.e.
  no tenant may sustain more than 2x another's share.
* **load shedding** — overload must surface as typed
  :class:`~repro.errors.Overloaded` refusals with Retry-After hints
  (the ``shed`` counter), never as queue bloat or stuck clients.
* **robustness** — the daemon's ``internal_errors`` counter must read
  zero after the storm: every failure a tenant caused came back as a
  typed protocol error, not an unhandled server exception.

Tail latency (p95/p99 of spawn-to-reaped round trips, queueing
included) is reported alongside, because fairness bought with a
collapsed tail is not worth having.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from typing import List, Optional, Sequence

from ...errors import BenchError, GatewayError, Overloaded, RateLimited
from ...gateway import (GatewayClient, GatewayConfig, GatewayServer,
                        TenantConfig)
from ..render import render_table
from ..stats import format_ns, percentile
from .base import ExperimentResult, register

#: The child every tenant spawns: cheap and uniform, so throughput
#: differences are scheduling, not workload.
GATEWAY_CHILD = ("/bin/true",)


class _TenantLoad:
    """One tenant's side of the storm: counters plus latency samples."""

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.completed = 0
        self.shed = 0
        self.rate_limited = 0
        self.errors = 0
        self.samples: List[float] = []
        self.lock = threading.Lock()


def _backoff(retry_after: Optional[float]) -> None:
    """Honour a Retry-After hint, bounded so a generous hint (or a
    drain grace) cannot stall the measurement."""
    time.sleep(min(max(retry_after or 0.0, 0.001), 0.05))


def _drive_tenant(load: _TenantLoad, address: str, token: str,
                  barrier: threading.Barrier, duration: float) -> None:
    """One closed-loop client thread: spawn, reap, repeat.

    Shed and rate-limited admissions are counted and retried after the
    daemon's Retry-After hint — the cooperative client the gateway's
    backpressure contract assumes.  Any *other* failure is an error.
    """
    try:
        client = GatewayClient(address, tenant=load.name,
                               token=token).connect()
    except GatewayError:
        with load.lock:
            load.errors += 1
        return
    try:
        barrier.wait()
        deadline = time.perf_counter() + duration
        while time.perf_counter() < deadline:
            started = time.perf_counter_ns()
            try:
                child = client.spawn(GATEWAY_CHILD)
            except Overloaded as exc:
                with load.lock:
                    load.shed += 1
                _backoff(exc.retry_after)
                continue
            except RateLimited as exc:
                with load.lock:
                    load.rate_limited += 1
                _backoff(exc.retry_after)
                continue
            except GatewayError:
                with load.lock:
                    load.errors += 1
                continue
            child.wait(timeout=30)
            with load.lock:
                load.completed += 1
                load.samples.append(
                    float(time.perf_counter_ns() - started))
    finally:
        client.close()


def _run_storm(tenant_count: int, weights: Sequence[float],
               threads_per_tenant: int, duration: float,
               max_inflight: int, max_queue: int):
    """Boot a daemon, offer the storm, return (loads, stats, wall)."""
    tokens = {f"tenant-{i}": f"secret-{i}" for i in range(tenant_count)}
    tenants = {
        name: TenantConfig(name=name, token=token, max_queue=max_queue,
                           weight=weights[index])
        for index, (name, token) in enumerate(tokens.items())}
    tempdir = tempfile.mkdtemp(prefix="repro-bench-t8-")
    address = os.path.join(tempdir, "gateway.sock")
    server = GatewayServer(GatewayConfig(
        unix_path=address, tenants=tenants,
        max_inflight=max_inflight, drain_grace=5.0)).start()
    loads = [_TenantLoad(name, config.weight)
             for name, config in tenants.items()]
    try:
        barrier = threading.Barrier(tenant_count * threads_per_tenant + 1)
        threads = [
            threading.Thread(
                target=_drive_tenant,
                args=(load, address, tokens[load.name], barrier, duration),
                name=f"t8-{load.name}-{worker}")
            for load in loads for worker in range(threads_per_tenant)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = server.stats()
    finally:
        server.stop()
        shutil.rmtree(tempdir, ignore_errors=True)
    return loads, stats, wall


@register("t8-gateway",
          "Spawn gateway: multi-tenant fairness under overload",
          "§5 spawn as a service",
          quick_kwargs={"duration": 1.0})
def run_t8_gateway(tenant_count: int = 4,
                   weights: Optional[Sequence[float]] = None,
                   threads_per_tenant: int = 4,
                   duration: float = 4.0,
                   max_inflight: int = 4,
                   max_queue: int = 2) -> ExperimentResult:
    """Fairness, shedding and tail latency of the gateway under storm.

    ``tenant_count`` tenants (equal weight unless ``weights`` is
    given), each driven by ``threads_per_tenant`` closed-loop client
    threads for ``duration`` seconds against a daemon capped at
    ``max_inflight`` concurrent spawns and ``max_queue`` queued
    requests per tenant — a deliberate overload
    (``threads_per_tenant`` must exceed ``max_queue`` or nothing is
    ever shed, because a closed-loop client has at most one request
    outstanding).  The summary row (keyed on ``concurrency``) carries
    ``fairness_score`` for ``repro-bench compare``.
    """
    if tenant_count < 2:
        raise BenchError("fairness needs at least two tenants")
    if weights is None:
        weights = [1.0] * tenant_count
    weights = [float(w) for w in weights]
    if len(weights) != tenant_count:
        raise BenchError(
            f"{tenant_count} tenants but {len(weights)} weights")
    loads, stats, wall = _run_storm(
        tenant_count, weights, threads_per_tenant, duration,
        max_inflight, max_queue)

    rows = []
    shares = []
    all_samples: List[float] = []
    for load in loads:
        per_second = load.completed / max(wall, 1e-9)
        # Normalise by weight so the fairness bar generalises to
        # weighted runs: WFQ promises *proportional* shares.
        shares.append(per_second / load.weight)
        all_samples.extend(load.samples)
        rows.append({
            "section": "tenant", "tenant": load.name,
            "weight": load.weight, "completed": load.completed,
            "shed": load.shed, "rate_limited": load.rate_limited,
            "errors": load.errors, "per_second": per_second,
            "p95_ns": (percentile(load.samples, 0.95)
                       if load.samples else None),
        })
    if not all_samples:
        raise BenchError("no tenant completed a single spawn — the "
                         "gateway shed everything")
    ratio = max(shares) / max(min(shares), 1e-9)
    concurrency = tenant_count * threads_per_tenant
    total = sum(load.completed for load in loads)
    summary = {
        "section": "overload", "concurrency": concurrency,
        "tenants": tenant_count, "requests": total,
        "per_second": total / max(wall, 1e-9),
        "fairness_ratio": ratio,
        "fairness_score": 1.0 / max(ratio, 1e-9),
        "shed": stats.get("shed_total", 0),
        "client_errors": sum(load.errors for load in loads),
        "internal_errors": stats.get("internal_errors", 0),
        "p95_ns": percentile(all_samples, 0.95),
        "p99_ns": percentile(all_samples, 0.99),
    }
    rows.append(summary)

    tenant_table = render_table(
        ["tenant", "weight", "spawns/sec", "shed", "p95"],
        [[row["tenant"], f"{row['weight']:g}",
          f"{row['per_second']:.0f}/s", str(row["shed"]),
          format_ns(row["p95_ns"]) if row["p95_ns"] else "-"]
         for row in rows if row["section"] == "tenant"],
        title=f"T8a: per-tenant service under overload "
              f"({concurrency} client threads, max_inflight="
              f"{max_inflight})")
    summary_table = render_table(
        ["spawns/sec", "fairness max/min", "shed", "internal errors",
         "p95", "p99"],
        [[f"{summary['per_second']:.0f}/s",
          f"{summary['fairness_ratio']:.2f}", str(summary["shed"]),
          str(summary["internal_errors"]),
          format_ns(summary["p95_ns"]), format_ns(summary["p99_ns"])]],
        title="T8b: the daemon's side of the storm")
    return ExperimentResult(
        "t8-gateway", "Spawn gateway under multi-tenant overload", rows,
        f"{tenant_table}\n\n{summary_table}", _notes(summary))


def _notes(summary: dict) -> str:
    shed = summary["shed"]
    verdict = ("load shedding engaged" if shed
               else "WARNING: the storm never overloaded the daemon — "
                    "shed counter is zero, raise burst or lower "
                    "max_inflight")
    robust = ("zero unhandled server exceptions"
              if not summary["internal_errors"]
              else f"WARNING: {summary['internal_errors']} internal "
                   f"server errors")
    return (f"{summary['tenants']} tenants offered "
            f"{summary['concurrency']} closed-loop client threads; the "
            f"weight-normalised throughput spread was "
            f"{summary['fairness_ratio']:.2f}x max/min "
            f"(fairness_score {summary['fairness_score']:.2f}, gate "
            f"floor 0.50 = no tenant above 2x another). {verdict} "
            f"({shed} refusals with Retry-After hints); {robust}. "
            f"overload cost tail latency, not correctness: p99 "
            f"{format_ns(summary['p99_ns'])} against p95 "
            f"{format_ns(summary['p95_ns'])}.")
