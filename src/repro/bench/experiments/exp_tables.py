"""Tables T1–T3: the API-surface count, the microbenchmark, overcommit."""

from __future__ import annotations

from typing import List, Optional

from ...apisurface import audit
from ..render import render_table
from ..simbench import t2_micro_sim, t3_overcommit
from ..stats import format_bytes, format_ns
from ..workloads import Workloads
from .base import ExperimentResult, register


@register("t1-api", "POSIX fork special-case count", "'25 special cases'")
def run_t1_api() -> ExperimentResult:
    """Regenerate the paper's API-surface claim from the catalog."""
    counts = audit.summary()
    rows = [dict(category=c, name=n, fork_behavior=b)
            for c, n, b in audit.special_case_table()]
    text = audit.render_table()
    notes = (f"{counts['fork_special_cases']} fork special cases encoded "
             f"(paper says ~25); {counts['exec_special_cases']} at exec.")
    return ExperimentResult("t1-api", "POSIX fork/exec special cases",
                            rows, text, notes)


@register("t2-micro", "Minimal-process creation latency", "prose claim",
          quick_kwargs={"repeats": 6})
def run_t2_micro(repeats: int = 25,
                 real_mechanisms: Optional[List[str]] = None
                 ) -> ExperimentResult:
    """Every mechanism from an empty parent: real OS and simulator."""
    real_mechanisms = real_mechanisms or [
        "fork_only", "fork_exec", "posix_spawn", "subprocess", "forkserver"]
    with Workloads() as workloads:
        workloads.start_forkserver()
        real = {name: workloads.measure_mechanism(name, repeats=repeats)
                for name in real_mechanisms}
    sim = t2_micro_sim()
    rows = []
    for name, summary in real.items():
        rows.append({"side": "real", "mechanism": name,
                     "median_ns": summary.median, "p95_ns": summary.p95})
    for name, ns in sim.items():
        rows.append({"side": "sim", "mechanism": name,
                     "median_ns": ns, "p95_ns": ns})
    table = render_table(
        ["side", "mechanism", "median", "p95"],
        [[r["side"], r["mechanism"], format_ns(r["median_ns"]),
          format_ns(r["p95_ns"])] for r in rows],
        title="T2: trivial-child creation latency, minimal parent")
    fastest_real = min(real, key=lambda n: real[n].median)
    notes = (f"fastest real mechanism from an empty parent: {fastest_real}; "
             f"the ordering inverts as the parent grows (see fig1-real).")
    return ExperimentResult("t2-micro", "Creation microbenchmark", rows,
                            table, notes)


@register("t3-overcommit", "fork forces overcommit", "prose claim")
def run_t3_overcommit(parent_fraction: float = 0.75) -> ExperimentResult:
    """fork vs spawn of a 75%-of-RAM parent under each overcommit mode."""
    raw = t3_overcommit(parent_fraction=parent_fraction)
    table = render_table(
        ["overcommit mode", "parent size", "fork", "spawn",
         "peak committed pages"],
        [[r["mode"], format_bytes(r["parent_bytes"]), r["fork"], r["spawn"],
          r["committed_pages_peak"]] for r in raw],
        title="T3: creating a child of a large parent")
    strict = next(r for r in raw if r["mode"] == "never")
    notes = ("under strict accounting fork of the large parent fails "
             f"({strict['fork']}) while spawn succeeds ({strict['spawn']}): "
             "to keep fork working, systems must overpromise memory — "
             "the paper's 'fork encourages overcommit'.")
    return ExperimentResult("t3-overcommit", "Overcommit experiment", raw,
                            table, notes)
