"""Measurement loop: warmup, repeats, and outlier-resistant summaries."""

from __future__ import annotations

import gc
import time
from typing import Callable, Optional

from ..errors import BenchError
from .stats import Summary


def measure(operation: Callable[[], None], *, repeats: int = 30,
            warmup: int = 3, disable_gc: bool = True,
            max_seconds: Optional[float] = None) -> Summary:
    """Time ``operation`` ``repeats`` times; returns a :class:`Summary` in ns.

    The garbage collector is paused around each timed call so a
    coincidental collection does not land inside a sample (it is run
    *between* samples instead, where it can do no harm).  ``max_seconds``
    caps total measurement time for expensive configurations — at least
    three samples are always taken.
    """
    if repeats < 1:
        raise BenchError("need at least one repeat")
    for _ in range(warmup):
        operation()
    samples = []
    deadline = (time.perf_counter() + max_seconds
                if max_seconds is not None else None)
    gc_was_enabled = gc.isenabled()
    try:
        for index in range(repeats):
            if disable_gc and gc_was_enabled:
                gc.collect()
                gc.disable()
            start = time.perf_counter_ns()
            operation()
            elapsed = time.perf_counter_ns() - start
            if disable_gc and gc_was_enabled:
                gc.enable()
            samples.append(float(elapsed))
            if (deadline is not None and index >= 2
                    and time.perf_counter() > deadline):
                break
    finally:
        if gc_was_enabled and not gc.isenabled():
            gc.enable()
    return Summary.from_samples(samples)
