"""Calibrating the simulator's cost model against this machine.

DESIGN.md §6: the simulator counts work and a :class:`CostModel` prices
it; the default constants approximate commodity x86.  This module fits
the two constants that matter for Figure 1 against *measured* fork
latencies on the host:

* the **per-page slope** — how many nanoseconds each additional dirty
  parent page adds to a fork (split between ``pte_copy_ns`` and
  ``pte_writeprotect_ns`` in their default proportion);
* the **fixed floor** — fork's size-independent cost
  (``fixed_fork_ns``).

The fit is ordinary least squares over ``fork_only`` medians at a sweep
of ballast sizes (``fork_only`` isolates the fork syscall: the child
exits before exec, so no loader noise enters the slope).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..errors import BenchError
from ..sim.params import PAGE_SIZE, CostModel
from .ballast import Ballast
from .workloads import Workloads


@dataclass(frozen=True)
class Calibration:
    """A fitted fork cost line: ``ns = fixed + per_page * pages``."""

    fixed_ns: float
    per_page_ns: float
    sizes: Tuple[int, ...]
    medians_ns: Tuple[float, ...]
    r_squared: float

    def predict_ns(self, dirty_bytes: int) -> float:
        """Predicted fork latency for a parent of ``dirty_bytes``."""
        return self.fixed_ns + self.per_page_ns * (dirty_bytes / PAGE_SIZE)


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """OLS fit ``y = a + b*x``; returns ``(a, b, r_squared)``."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise BenchError("need at least two (x, y) points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise BenchError("degenerate fit: all x identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2
                 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - (ss_res / ss_tot if ss_tot else 0.0)
    return intercept, slope, r_squared


def calibration_from_points(sizes: Sequence[int],
                            medians_ns: Sequence[float]) -> Calibration:
    """Fit a :class:`Calibration` from already-measured points."""
    pages = [size / PAGE_SIZE for size in sizes]
    fixed, per_page, r_squared = fit_line(pages, list(medians_ns))
    return Calibration(fixed_ns=max(fixed, 0.0),
                       per_page_ns=max(per_page, 0.0),
                       sizes=tuple(sizes),
                       medians_ns=tuple(float(m) for m in medians_ns),
                       r_squared=r_squared)


def measure_fork_line(sizes: Optional[Sequence[int]] = None, *,
                      repeats: int = 12,
                      max_seconds: float = 6.0) -> Calibration:
    """Measure ``fork_only`` at a size sweep on this machine and fit it."""
    sizes = list(sizes) if sizes is not None else [
        16 << 20, 64 << 20, 128 << 20, 256 << 20]
    medians: List[float] = []
    with Workloads() as workloads:
        for size in sizes:
            with Ballast(size):
                summary = workloads.measure_mechanism(
                    "fork_only", repeats=repeats, max_seconds=max_seconds)
            medians.append(summary.median)
    return calibration_from_points(sizes, medians)


def calibrated_cost_model(calibration: Calibration,
                          base: Optional[CostModel] = None) -> CostModel:
    """A cost model whose fork line matches the measured one.

    The measured per-page slope is split between PTE copying and
    write-protecting in the base model's own proportion, so ablations
    keep their relative meaning; the measured floor replaces
    ``fixed_fork_ns``.
    """
    base = base if base is not None else CostModel()
    base_per_page = base.pte_copy_ns + base.pte_writeprotect_ns
    if base_per_page <= 0:
        raise BenchError("base model has no per-page fork cost to scale")
    scale = calibration.per_page_ns / base_per_page
    return replace(
        base,
        pte_copy_ns=base.pte_copy_ns * scale,
        pte_writeprotect_ns=base.pte_writeprotect_ns * scale,
        fixed_fork_ns=calibration.fixed_ns,
    )


def compare_real_vs_sim(calibration: Calibration,
                        model: CostModel) -> List[dict]:
    """Per-size rows: measured median vs the calibrated model's fork cost.

    The model side is computed analytically (pages × per-page + floor),
    which is exactly what the simulator charges for a fork of that many
    dirty pages.
    """
    rows = []
    per_page = model.pte_copy_ns + model.pte_writeprotect_ns
    for size, median in zip(calibration.sizes, calibration.medians_ns):
        pages = size / PAGE_SIZE
        sim_ns = model.fixed_fork_ns + pages * per_page
        rows.append({
            "ballast_bytes": size,
            "real_ns": median,
            "sim_ns": sim_ns,
            "ratio": sim_ns / median if median else float("inf"),
        })
    return rows
