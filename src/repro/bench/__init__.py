"""The measurement harness: timers, ballast, workloads, experiments.

``python -m repro.bench list`` shows every regenerable paper artifact;
``python -m repro.bench run <id>`` regenerates one.
"""

from .ballast import Ballast, default_sizes, resident_bytes
from .calibrate import (Calibration, calibrated_cost_model,
                        calibration_from_points, measure_fork_line)
from .render import render_series_chart, render_table
from .stats import Summary, format_bytes, format_ns, percentile, speedup
from .timing import measure
from .workloads import Workloads

__all__ = [
    "Ballast", "Calibration", "calibrated_cost_model",
    "calibration_from_points", "measure_fork_line", "Summary", "Workloads", "default_sizes", "format_bytes",
    "format_ns", "measure", "percentile", "render_series_chart",
    "render_table", "resident_bytes", "speedup",
]
