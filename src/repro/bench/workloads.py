"""Real-OS process-creation workloads: the measured side of Figure 1.

Each workload creates one trivial child (``/bin/true``) and waits for it,
through a different mechanism:

* ``fork_exec`` — ``os.fork`` + ``os.execv``: the traditional pair.
* ``fork_only`` — ``os.fork`` + immediate ``os._exit`` in the child:
  isolates the fork syscall itself (no exec, no loader).
* ``posix_spawn`` — ``os.posix_spawn``.
* ``subprocess`` — the stdlib (itself vfork/posix_spawn-based).
* ``forkserver`` — a request to a pre-started pristine helper.

All of them measure creation *plus wait*, which is what an application
observes; ``fork_only`` children exit before exec so the pair
(``fork_exec`` − ``fork_only``) brackets the exec cost.

The second half of this module is the *service* axis (experiment
``t5-throughput``): :class:`ServiceWorkloads` exposes the same
spawn-and-wait operation through mechanisms that differ in how they
handle **concurrent** callers, and :func:`measure_spawn_throughput`
hammers one of them from N client threads and reports spawns/sec plus
per-request latency percentiles.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.autoscale import AutoscaleConfig, PoolAutoscaler
from ..core.batch import BatchRequest
from ..core.forkserver import ForkServer
from ..core.forkserver_pool import ForkServerPool
from ..core.templates import TemplateProfile, TemplateRegistry
from ..errors import BenchError
from .ballast import Ballast
from .stats import Summary
from .timing import measure

TRIVIAL_CHILD = "/bin/true"

#: The preload set for the template-zygote workloads: stdlib modules a
#: service worker plausibly needs, chosen because importing them cold
#: costs real time (parsing, bytecode, C extension init) — the cost a
#: specialised zygote pays once instead of per child.
PRELOAD_MODULES = ("json", "logging", "csv", "decimal", "argparse",
                   "email.parser", "ssl")

#: Default child for the throughput workloads: a process that does a
#: little "work" (here: 10ms of sleep standing in for I/O) before
#: exiting.  A service's children are rarely pure CPU from exec to exit,
#: and the sleep is what lets concurrent child runtimes overlap — the
#: axis the t5 experiment measures.
SERVICE_CHILD = ["/bin/sleep", "0.01"]


def _fork_exec_once() -> None:
    pid = os.fork()
    if pid == 0:
        try:
            os.execv(TRIVIAL_CHILD, [TRIVIAL_CHILD])
        except BaseException:
            os._exit(127)
    os.waitpid(pid, 0)


def _fork_only_once() -> None:
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)


def _posix_spawn_once() -> None:
    pid = os.posix_spawn(TRIVIAL_CHILD, [TRIVIAL_CHILD], {})
    os.waitpid(pid, 0)


def _subprocess_once() -> None:
    subprocess.run([TRIVIAL_CHILD], check=True)


class Workloads:
    """The mechanism registry, owning the shared forkserver."""

    def __init__(self):
        self._forkserver: Optional[ForkServer] = None
        self._templates: Optional[TemplateRegistry] = None

    def close(self) -> None:
        if self._forkserver is not None:
            self._forkserver.stop()
            self._forkserver = None
        if self._templates is not None:
            self._templates.close()
            self._templates = None

    def __enter__(self) -> "Workloads":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _forkserver_once(self) -> None:
        if self._forkserver is None:
            # Started lazily but BEFORE ballast in the sweep below, so
            # the helper stays small — that is the whole trick.
            self._forkserver = ForkServer().start()
        child = self._forkserver.spawn([TRIVIAL_CHILD])
        child.wait(timeout=30)

    def start_forkserver(self) -> None:
        """Start the helper now (call before allocating ballast)."""
        if self._forkserver is None:
            self._forkserver = ForkServer().start()

    def start_templates(self) -> None:
        """Warm the template registry now (call before ballast).

        The registry keeps a few pre-forked children parked, so a
        ``template`` measurement is a lease plus wait — no page-table
        walk of *this* (possibly huge) process anywhere on the path.
        The restock interval is bench-tuned: back-to-back latency
        probes drain the stock faster than production traffic would.
        """
        if self._templates is None:
            registry = TemplateRegistry(autoscale=AutoscaleConfig(
                idle_ttl=5.0, interval=0.005, step=2))
            registry.register(TemplateProfile("bench", stock=4,
                                              max_stock=32), warm=True)
            self._templates = registry

    def _template_once(self) -> None:
        if self._templates is None:
            self.start_templates()
        child = self._templates.spawn("bench", [TRIVIAL_CHILD])
        child.wait(timeout=30)

    def mechanisms(self) -> Dict[str, Callable[[], None]]:
        """Name -> one-shot creation callable."""
        return {
            "fork_exec": _fork_exec_once,
            "fork_only": _fork_only_once,
            "posix_spawn": _posix_spawn_once,
            "subprocess": _subprocess_once,
            "forkserver": self._forkserver_once,
            "template": self._template_once,
        }

    def measure_mechanism(self, name: str, *, repeats: int = 20,
                          max_seconds: float = 10.0) -> Summary:
        """Latency summary for one mechanism at the current memory size."""
        mechanisms = self.mechanisms()
        if name not in mechanisms:
            raise BenchError(
                f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
        return measure(mechanisms[name], repeats=repeats, warmup=2,
                       max_seconds=max_seconds)

    def measure_with_fds(self, name: str, nfds: int, *, repeats: int = 15,
                         max_seconds: float = 6.0) -> Summary:
        """Latency of one mechanism while holding ``nfds`` open files.

        The descriptor-table dimension of creation cost: fork copies
        every entry.  Descriptors are opened on ``/dev/null`` and closed
        before returning.
        """
        fds = [os.open(os.devnull, os.O_RDONLY) for _ in range(nfds)]
        try:
            return self.measure_mechanism(name, repeats=repeats,
                                          max_seconds=max_seconds)
        finally:
            for fd in fds:
                os.close(fd)

    def sweep(self, sizes: List[int], names: Optional[List[str]] = None, *,
              repeats: int = 15, max_seconds: float = 8.0) -> List[dict]:
        """The Figure-1 grid: ballast size × mechanism -> Summary.

        Returns one row per size: ``{"ballast_bytes": n, "results":
        {name: Summary}}``.  The forkserver is started before any
        ballast exists, exactly as a real application would.
        """
        names = names or ["fork_exec", "posix_spawn", "forkserver"]
        self.start_forkserver()
        if "template" in names:
            self.start_templates()
        rows = []
        for size in sizes:
            with Ballast(size):
                results = {}
                for name in names:
                    results[name] = self.measure_mechanism(
                        name, repeats=repeats, max_seconds=max_seconds)
                rows.append({"ballast_bytes": size, "results": results})
        return rows


# ---------------------------------------------------------------------------
# The service axis: spawn throughput under offered concurrency (T5).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputResult:
    """One throughput measurement: a mechanism under offered concurrency.

    ``per_second`` is completed spawns per wall-clock second across all
    client threads; ``latency`` summarises individual spawn-and-wait
    round-trips in nanoseconds (median = p50).
    """

    mechanism: str
    concurrency: int
    requests: int
    errors: int
    wall_seconds: float
    per_second: float
    latency: Summary

    def as_dict(self) -> dict:
        return {
            "mechanism": self.mechanism, "concurrency": self.concurrency,
            "requests": self.requests, "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "per_second": self.per_second,
            "latency": self.latency.as_dict(),
        }


def measure_spawn_throughput(spawn_and_wait: Callable[[], None], *,
                             concurrency: int, requests_per_thread: int,
                             mechanism: str = "?",
                             children_per_call: int = 1) -> ThroughputResult:
    """Offer ``concurrency`` client threads, each spawning in a loop.

    All clients start together (barrier), each performs
    ``requests_per_thread`` spawn-and-wait calls, and the wall clock
    runs from the barrier to the last client's exit — so the number
    reported is sustained service throughput, not best-case latency
    inverted.  A failing call counts as an error and does not
    contribute a latency sample.

    ``children_per_call`` scales the accounting for batched mechanisms:
    one call that spawns N children counts as N completed spawns in
    ``requests`` and ``per_second`` (latency still summarises the whole
    call's round trip, which is what a batching caller experiences).
    """
    if concurrency < 1:
        raise BenchError("need at least one client thread")
    if requests_per_thread < 1:
        raise BenchError("need at least one request per thread")
    if children_per_call < 1:
        raise BenchError("need at least one child per call")
    barrier = threading.Barrier(concurrency + 1)
    samples_by_thread: List[List[float]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency

    def client(index: int) -> None:
        samples = samples_by_thread[index]
        barrier.wait()
        for _ in range(requests_per_thread):
            start = time.perf_counter_ns()
            try:
                spawn_and_wait()
            except Exception:
                errors[index] += 1
                continue
            samples.append(float(time.perf_counter_ns() - start))

    threads = [threading.Thread(target=client, args=(index,),
                                name=f"spawn-client-{index}")
               for index in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    samples = [value for per_thread in samples_by_thread
               for value in per_thread]
    if not samples:
        raise BenchError(
            f"no spawn succeeded for mechanism {mechanism!r} "
            f"({sum(errors)} errors)")
    spawns = len(samples) * children_per_call
    return ThroughputResult(
        mechanism=mechanism, concurrency=concurrency,
        requests=spawns, errors=sum(errors),
        wall_seconds=wall, per_second=spawns / max(wall, 1e-9),
        latency=Summary.from_samples(samples))


class ServiceWorkloads:
    """Spawn-and-wait operations for the service-throughput axis.

    Every mechanism launches the same child and blocks until it exits —
    what a request handler inside a spawn service actually does — but
    they differ in how concurrent callers interact:

    * ``fork_exec`` / ``posix_spawn`` — direct creation per caller; the
      kernel is the only shared resource.
    * ``forkserver-locked`` — ONE helper behind one lock and blocking
      round-trips: the historical design, where every caller waits for
      every other caller's entire request *including child runtime*.
    * ``forkserver-pipelined`` — one helper, many in-flight requests on
      the shared socket (correlation ids).
    * ``forkserver-pool`` — pipelining plus N helpers with least-loaded
      dispatch: the full spawn service.
    * ``forkserver-pool-batch`` — the same pool, but each call ships
      ``batch_size`` spawn requests in ONE wire frame
      (:meth:`ForkServerPool.spawn_batch`): amortised framing, one
      ``sendmsg``, one helper fork loop.

    ``autoscale`` replaces the fixed-size pool with a
    :class:`~repro.core.autoscale.PoolAutoscaler`-managed one: the pool
    starts at ``min_workers`` and grows toward ``pool_workers`` (or the
    given config's ``max_workers``) as queue depth demands.  Pass
    ``True`` for bench-tuned defaults or an :class:`AutoscaleConfig`
    for full control.

    All servers start lazily and are shared across measurements; use as
    a context manager to get them torn down.
    """

    MECHANISMS = ("fork_exec", "posix_spawn", "forkserver-locked",
                  "forkserver-pipelined", "forkserver-pool",
                  "forkserver-pool-batch")

    def __init__(self, child_argv: Optional[Sequence[str]] = None, *,
                 pool_workers: int = 4, batch_size: int = 4,
                 autoscale=None):
        if batch_size < 1:
            raise BenchError(f"batch_size must be >= 1: {batch_size}")
        self.child_argv = [os.fspath(a) for a in (child_argv
                                                  or SERVICE_CHILD)]
        self._pool_workers = pool_workers
        self.batch_size = batch_size
        if autoscale is True:
            # Bench-tuned windows: react within a quick run's few
            # hundred milliseconds instead of production seconds.
            autoscale = AutoscaleConfig(
                min_workers=1, max_workers=pool_workers,
                high_watermark=1.5, sustain_seconds=0.05,
                idle_ttl=0.4, interval=0.02)
        self._autoscale_config: Optional[AutoscaleConfig] = autoscale or None
        self._autoscaler: Optional[PoolAutoscaler] = None
        self._init_lock = threading.Lock()
        self._locked: Optional[ForkServer] = None
        self._pipelined: Optional[ForkServer] = None
        self._pool: Optional[ForkServerPool] = None

    def close(self) -> None:
        if self._autoscaler is not None:
            self._autoscaler.stop()
            self._autoscaler = None
        for server in (self._locked, self._pipelined, self._pool):
            if server is not None:
                server.stop()
        self._locked = self._pipelined = self._pool = None

    @property
    def pool(self) -> Optional[ForkServerPool]:
        """The shared pool, if any mechanism has started it yet."""
        return self._pool

    @property
    def autoscaler(self) -> Optional[PoolAutoscaler]:
        """The running autoscaler (``autoscale`` mode only)."""
        return self._autoscaler

    def __enter__(self) -> "ServiceWorkloads":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- one spawn-and-wait per mechanism --------------------------------

    def _fork_exec_once(self) -> None:
        pid = os.fork()
        if pid == 0:
            try:
                os.execv(self.child_argv[0], self.child_argv)
            except BaseException:
                os._exit(127)
        os.waitpid(pid, 0)

    def _posix_spawn_once(self) -> None:
        pid = os.posix_spawn(self.child_argv[0], self.child_argv, {})
        os.waitpid(pid, 0)

    def _locked_once(self) -> None:
        with self._init_lock:
            if self._locked is None:
                self._locked = ForkServer(pipelined=False).start()
        self._locked.spawn(self.child_argv).wait()

    def _pipelined_once(self) -> None:
        with self._init_lock:
            if self._pipelined is None:
                self._pipelined = ForkServer().start()
        self._pipelined.spawn(self.child_argv).wait()

    def _ensure_pool(self) -> ForkServerPool:
        with self._init_lock:
            if self._pool is None:
                config = self._autoscale_config
                if config is not None:
                    # Start small and let the autoscaler earn capacity:
                    # the elasticity IS the measurement.
                    self._pool = ForkServerPool(
                        config.min_workers,
                        prestart=config.min_workers).start()
                    self._autoscaler = PoolAutoscaler(
                        self._pool, config).start()
                else:
                    # Pre-start every helper: a real spawn service warms
                    # its zygotes before taking traffic, and the
                    # measurement should see steady state, not
                    # interpreter boot time.
                    self._pool = ForkServerPool(
                        self._pool_workers,
                        prestart=self._pool_workers).start()
        return self._pool

    def _pool_once(self) -> None:
        self._ensure_pool().spawn(self.child_argv).wait()

    def _pool_batch_once(self) -> None:
        pool = self._ensure_pool()
        children = pool.spawn_batch(
            BatchRequest.of([self.child_argv] * self.batch_size))
        for child in children:
            child.wait()

    def mechanisms(self) -> Dict[str, Callable[[], None]]:
        """Name -> one blocking spawn-and-wait call (thread-safe)."""
        return {
            "fork_exec": self._fork_exec_once,
            "posix_spawn": self._posix_spawn_once,
            "forkserver-locked": self._locked_once,
            "forkserver-pipelined": self._pipelined_once,
            "forkserver-pool": self._pool_once,
            "forkserver-pool-batch": self._pool_batch_once,
        }

    def warm(self, names: Optional[Sequence[str]] = None) -> None:
        """Run each mechanism once: starts helpers, pages the binaries."""
        mechanisms = self.mechanisms()
        for name in (names or self.MECHANISMS):
            if name not in mechanisms:
                raise BenchError(
                    f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
            mechanisms[name]()

    def measure(self, name: str, *, concurrency: int,
                requests_per_thread: int) -> ThroughputResult:
        """Throughput of one mechanism at one offered concurrency."""
        mechanisms = self.mechanisms()
        if name not in mechanisms:
            raise BenchError(
                f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
        children = (self.batch_size if name == "forkserver-pool-batch"
                    else 1)
        return measure_spawn_throughput(
            mechanisms[name], concurrency=concurrency,
            requests_per_thread=requests_per_thread, mechanism=name,
            children_per_call=children)


# ---------------------------------------------------------------------------
# The specialisation axis: preload-heavy workers, generic vs template (T7).
# ---------------------------------------------------------------------------


class TemplateWorkloads:
    """Preload-heavy spawn throughput: generic pool vs specialised zygote.

    The job is the same for both mechanisms — "give me a Python worker
    with :data:`PRELOAD_MODULES` available, let it run, wait for it" —
    but they pay for the imports at different times:

    * ``forkserver-pool`` — the generic spawn service launches a *fresh*
      interpreter per request (``python -c 'import ...'``): every child
      pays interpreter boot plus the full import chain.
    * ``template-lease`` — a :class:`~repro.core.templates.TemplateServer`
      specialised with the same preloads keeps pre-forked children
      parked; a lease hands one of them the payload, which finds every
      module already in ``sys.modules``.

    The gap between the two is the provisioned-concurrency argument in
    one number.  Servers start lazily and are shared; use as a context
    manager for teardown.
    """

    MECHANISMS = ("forkserver-pool", "template-lease")

    def __init__(self, modules: Optional[Sequence[str]] = None, *,
                 pool_workers: int = 4, stock: int = 8,
                 max_stock: int = 32):
        self.modules = tuple(modules or PRELOAD_MODULES)
        if not self.modules:
            raise BenchError("need at least one preload module")
        self.code = "import " + ", ".join(self.modules)
        self.child_argv = [sys.executable, "-c", self.code]
        self._pool_workers = pool_workers
        self._stock = stock
        self._max_stock = max_stock
        self._init_lock = threading.Lock()
        self._pool: Optional[ForkServerPool] = None
        self._registry: Optional[TemplateRegistry] = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        if self._registry is not None:
            self._registry.close()
            self._registry = None

    def __enter__(self) -> "TemplateWorkloads":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def registry(self) -> Optional[TemplateRegistry]:
        """The shared registry, if the lease mechanism has started it."""
        return self._registry

    def _ensure_pool(self) -> ForkServerPool:
        with self._init_lock:
            if self._pool is None:
                self._pool = ForkServerPool(
                    self._pool_workers,
                    prestart=self._pool_workers).start()
        return self._pool

    def _ensure_registry(self) -> TemplateRegistry:
        with self._init_lock:
            if self._registry is None:
                registry = TemplateRegistry(autoscale=AutoscaleConfig(
                    idle_ttl=5.0, interval=0.005, step=4))
                registry.register(
                    TemplateProfile("preload", preload=self.modules,
                                    stock=self._stock,
                                    max_stock=self._max_stock), warm=True)
                self._registry = registry
        return self._registry

    def _pool_once(self) -> None:
        self._ensure_pool().spawn(self.child_argv).wait(timeout=60)

    def _lease_once(self) -> None:
        child = self._ensure_registry().spawn("preload", code=self.code)
        child.wait(timeout=60)

    def mechanisms(self) -> Dict[str, Callable[[], None]]:
        """Name -> one blocking spawn-and-wait call (thread-safe)."""
        return {
            "forkserver-pool": self._pool_once,
            "template-lease": self._lease_once,
        }

    def warm(self, names: Optional[Sequence[str]] = None) -> None:
        """Run each mechanism once: boots servers, pages the imports."""
        mechanisms = self.mechanisms()
        for name in (names or self.MECHANISMS):
            if name not in mechanisms:
                raise BenchError(
                    f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
            mechanisms[name]()

    def measure(self, name: str, *, concurrency: int,
                requests_per_thread: int) -> ThroughputResult:
        """Throughput of one mechanism at one offered concurrency."""
        mechanisms = self.mechanisms()
        if name not in mechanisms:
            raise BenchError(
                f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
        return measure_spawn_throughput(
            mechanisms[name], concurrency=concurrency,
            requests_per_thread=requests_per_thread, mechanism=name)
