"""Real-OS process-creation workloads: the measured side of Figure 1.

Each workload creates one trivial child (``/bin/true``) and waits for it,
through a different mechanism:

* ``fork_exec`` — ``os.fork`` + ``os.execv``: the traditional pair.
* ``fork_only`` — ``os.fork`` + immediate ``os._exit`` in the child:
  isolates the fork syscall itself (no exec, no loader).
* ``posix_spawn`` — ``os.posix_spawn``.
* ``subprocess`` — the stdlib (itself vfork/posix_spawn-based).
* ``forkserver`` — a request to a pre-started pristine helper.

All of them measure creation *plus wait*, which is what an application
observes; ``fork_only`` children exit before exec so the pair
(``fork_exec`` − ``fork_only``) brackets the exec cost.
"""

from __future__ import annotations

import os
import subprocess
from typing import Callable, Dict, List, Optional

from ..core.forkserver import ForkServer
from ..errors import BenchError
from .ballast import Ballast
from .stats import Summary
from .timing import measure

TRIVIAL_CHILD = "/bin/true"


def _fork_exec_once() -> None:
    pid = os.fork()
    if pid == 0:
        try:
            os.execv(TRIVIAL_CHILD, [TRIVIAL_CHILD])
        except BaseException:
            os._exit(127)
    os.waitpid(pid, 0)


def _fork_only_once() -> None:
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)


def _posix_spawn_once() -> None:
    pid = os.posix_spawn(TRIVIAL_CHILD, [TRIVIAL_CHILD], {})
    os.waitpid(pid, 0)


def _subprocess_once() -> None:
    subprocess.run([TRIVIAL_CHILD], check=True)


class Workloads:
    """The mechanism registry, owning the shared forkserver."""

    def __init__(self):
        self._forkserver: Optional[ForkServer] = None

    def close(self) -> None:
        if self._forkserver is not None:
            self._forkserver.stop()
            self._forkserver = None

    def __enter__(self) -> "Workloads":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _forkserver_once(self) -> None:
        if self._forkserver is None:
            # Started lazily but BEFORE ballast in the sweep below, so
            # the helper stays small — that is the whole trick.
            self._forkserver = ForkServer().start()
        child = self._forkserver.spawn([TRIVIAL_CHILD])
        child.wait(timeout=30)

    def start_forkserver(self) -> None:
        """Start the helper now (call before allocating ballast)."""
        if self._forkserver is None:
            self._forkserver = ForkServer().start()

    def mechanisms(self) -> Dict[str, Callable[[], None]]:
        """Name -> one-shot creation callable."""
        return {
            "fork_exec": _fork_exec_once,
            "fork_only": _fork_only_once,
            "posix_spawn": _posix_spawn_once,
            "subprocess": _subprocess_once,
            "forkserver": self._forkserver_once,
        }

    def measure_mechanism(self, name: str, *, repeats: int = 20,
                          max_seconds: float = 10.0) -> Summary:
        """Latency summary for one mechanism at the current memory size."""
        mechanisms = self.mechanisms()
        if name not in mechanisms:
            raise BenchError(
                f"unknown mechanism {name!r}; have {sorted(mechanisms)}")
        return measure(mechanisms[name], repeats=repeats, warmup=2,
                       max_seconds=max_seconds)

    def measure_with_fds(self, name: str, nfds: int, *, repeats: int = 15,
                         max_seconds: float = 6.0) -> Summary:
        """Latency of one mechanism while holding ``nfds`` open files.

        The descriptor-table dimension of creation cost: fork copies
        every entry.  Descriptors are opened on ``/dev/null`` and closed
        before returning.
        """
        fds = [os.open(os.devnull, os.O_RDONLY) for _ in range(nfds)]
        try:
            return self.measure_mechanism(name, repeats=repeats,
                                          max_seconds=max_seconds)
        finally:
            for fd in fds:
                os.close(fd)

    def sweep(self, sizes: List[int], names: Optional[List[str]] = None, *,
              repeats: int = 15, max_seconds: float = 8.0) -> List[dict]:
        """The Figure-1 grid: ballast size × mechanism -> Summary.

        Returns one row per size: ``{"ballast_bytes": n, "results":
        {name: Summary}}``.  The forkserver is started before any
        ballast exists, exactly as a real application would.
        """
        names = names or ["fork_exec", "posix_spawn", "forkserver"]
        self.start_forkserver()
        rows = []
        for size in sizes:
            with Ballast(size):
                results = {}
                for name in names:
                    results[name] = self.measure_mechanism(
                        name, repeats=repeats, max_seconds=max_seconds)
                rows.append({"ballast_bytes": size, "results": results})
        return rows
