"""Robust summary statistics for latency samples.

Process-creation latencies are right-skewed (page-cache misses, scheduler
noise), so the harness reports medians and percentiles rather than means,
with the mean kept for cross-checking.  Everything is plain arithmetic on
a list of floats — no numpy dependency here, so the stats are usable from
the forkserver-measuring child processes too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import BenchError


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    if not samples:
        raise BenchError("percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise BenchError(f"fraction {fraction} outside [0, 1]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high or ordered[low] == ordered[high]:
        # Second condition avoids float round-off pushing the
        # interpolation a ULP outside [low, high] when both ends agree.
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class Summary:
    """Summary of one sample set (nanoseconds unless stated otherwise)."""

    n: int
    median: float
    mean: float
    stdev: float
    p05: float
    p95: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Summary":
        """Summarise ``samples`` (at least one required)."""
        if not samples:
            raise BenchError("no samples to summarise")
        values = list(map(float, samples))
        n = len(values)
        mean = sum(values) / n
        variance = (sum((v - mean) ** 2 for v in values) / (n - 1)
                    if n > 1 else 0.0)
        return cls(
            n=n,
            median=percentile(values, 0.5),
            mean=mean,
            stdev=math.sqrt(variance),
            p05=percentile(values, 0.05),
            p95=percentile(values, 0.95),
            minimum=min(values),
            maximum=max(values),
        )

    def scaled(self, factor: float) -> "Summary":
        """The same distribution with every statistic scaled."""
        return Summary(self.n, self.median * factor, self.mean * factor,
                       self.stdev * factor, self.p05 * factor,
                       self.p95 * factor, self.minimum * factor,
                       self.maximum * factor)

    def as_dict(self) -> dict:
        return {
            "n": self.n, "median": self.median, "mean": self.mean,
            "stdev": self.stdev, "p05": self.p05, "p95": self.p95,
            "min": self.minimum, "max": self.maximum,
        }


def format_ns(ns: float) -> str:
    """Human scale: 1234 -> '1.23us', 2.5e6 -> '2.50ms'."""
    if ns < 0:
        return "-" + format_ns(-ns)
    if ns < 1e3:
        return f"{ns:.0f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f}us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.3f}s"


def format_bytes(nbytes: float) -> str:
    """Human scale for byte counts (binary units)."""
    units = ["B", "KiB", "MiB", "GiB", "TiB"]
    value = float(nbytes)
    for unit in units:
        if abs(value) < 1024.0 or unit == units[-1]:
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def speedup(baseline: float, contender: float) -> float:
    """How many times faster ``contender`` is than ``baseline``."""
    if contender <= 0:
        raise BenchError("non-positive contender time")
    return baseline / contender
