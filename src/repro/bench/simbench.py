"""Simulator-side experiments: deterministic versions of every figure.

The simulator's clock is a cost model over counted work, so one run per
configuration yields an *exact* number — no repeats, no noise.  These
drivers use :meth:`repro.sim.kernel.Kernel.timed_call` to price single
syscalls the way the trampoline would.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..errors import BenchError, SimMemoryError
from ..sim.kernel import Kernel
from ..sim.locks import fork_stall_ns, simulate_contention
from ..sim.params import GIB, MIB, CostModel, SimConfig
from ..sim.syscalls.base import Park

IDLE = "/bin/idle"
TRIVIAL = "/bin/true"

#: The Figure-1b sweep: 1 MiB to 8 GiB, the range the paper measured.
DEFAULT_SIM_SIZES = [1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB, 256 * MIB,
                     1 * GIB, 2 * GIB, 4 * GIB, 8 * GIB]

SIM_MECHANISMS = ("fork", "vfork", "spawn", "xproc", "zygote")


def _machine(config: Optional[SimConfig] = None) -> Kernel:
    kernel = Kernel(config if config is not None else
                    SimConfig(total_ram=32 * GIB))
    kernel.register_program(IDLE, lambda sys: iter(()))
    kernel.register_program(TRIVIAL, lambda sys: iter(()))
    return kernel


def _parent_with_ballast(kernel: Kernel, nbytes: int):
    proc = kernel.spawn_root(IDLE)
    thread = proc.main_thread()
    if nbytes:
        (addr, _), = [kernel.timed_call(thread, "mmap", nbytes)]
        kernel.timed_call(thread, "populate", addr, nbytes)
    return proc, thread


def _cleanup_child(kernel: Kernel, pid: int) -> None:
    child = kernel.find_process(pid)
    if child is not None and child.alive:
        kernel.exit_process(child, 0)


def _zygote_thread(kernel: Kernel):
    """The machine's warm template process (created once per kernel).

    The Android model: a small process with the runtime preloaded sits
    idle; new "programs" are forks of *it* (no exec, no image load) that
    specialise in place.  Its cost is fork-of-a-small-parent — flat,
    and cheaper than spawn's image-load fixed cost.
    """
    template = getattr(kernel, "_zygote_process", None)
    if template is None:
        template = kernel.spawn_root(TRIVIAL)
        kernel._zygote_process = template
    return template.main_thread()


def creation_ns(kernel: Kernel, thread, mechanism: str) -> float:
    """Virtual nanoseconds to create one trivial child via ``mechanism``."""
    trivial_main = lambda sys: iter(())  # noqa: E731 - tiny child body
    if mechanism == "zygote":
        zygote = _zygote_thread(kernel)
        pid, elapsed = kernel.timed_call(zygote, "fork", trivial_main)
        _cleanup_child(kernel, pid)
        return elapsed
    if mechanism == "fork":
        pid, elapsed = kernel.timed_call(thread, "fork", trivial_main)
        _cleanup_child(kernel, pid)
        return elapsed
    if mechanism == "vfork":
        try:
            kernel.timed_call(thread, "vfork", trivial_main)
        except Park:
            elapsed = kernel._last_call_ns
            child_pid = max(kernel.processes)
            _cleanup_child(kernel, child_pid)
            thread.state = "ready"  # undo the park; the driver owns time
            thread.pending_call = None
            thread.wake_result = None
            return elapsed
        raise BenchError("vfork did not park the parent")
    if mechanism == "spawn":
        pid, elapsed = kernel.timed_call(thread, "spawn", TRIVIAL)
        _cleanup_child(kernel, pid)
        return elapsed
    if mechanism == "xproc":
        handle, ns_create = kernel.timed_call(thread, "xproc_create")
        pid, ns_start = kernel.timed_call(thread, "xproc_start", handle,
                                          TRIVIAL)
        _cleanup_child(kernel, pid)
        return ns_create + ns_start
    raise BenchError(f"unknown mechanism {mechanism!r}; "
                     f"have {SIM_MECHANISMS}")


def fig1_sim(sizes: Optional[List[int]] = None,
             mechanisms=SIM_MECHANISMS,
             config: Optional[SimConfig] = None) -> List[dict]:
    """Figure 1 in the simulator: creation time vs parent dirty size."""
    rows = []
    for size in (sizes if sizes is not None else DEFAULT_SIM_SIZES):
        kernel = _machine(config)
        _, thread = _parent_with_ballast(kernel, size)
        results = {m: creation_ns(kernel, thread, m) for m in mechanisms}
        rows.append({"ballast_bytes": size, "results": results})
    return rows


def t2_micro_sim(mechanisms=SIM_MECHANISMS) -> Dict[str, float]:
    """Minimal-parent creation cost per mechanism (Table T2, sim side)."""
    out = {}
    for mechanism in mechanisms:
        kernel = _machine()
        _, thread = _parent_with_ballast(kernel, 0)
        out[mechanism] = creation_ns(kernel, thread, mechanism)
    return out


def f2_scaling(thread_counts=(1, 2, 4, 8, 16, 32), *,
               ops_per_thread: int = 200,
               config: Optional[SimConfig] = None) -> List[dict]:
    """Fault throughput vs threads under one VM lock vs per-VMA locks.

    The critical-section length is the cost model's fault service time,
    so the simulation and the kernel price the same mechanism
    consistently.  Also reports the work stalled behind one concurrent
    fork of a 1 GiB parent (the paper's "fork stalls the process").
    """
    cfg = config if config is not None else SimConfig()
    cost = cfg.cost_model
    critical = cost.fault_ns + cost.vm_lock_ns
    parallel = 2_000.0  # user-mode work between faults
    fork_walk = (1 * GIB // cfg.page_size) * (cost.pte_copy_ns
                                              + cost.pte_writeprotect_ns)
    rows = []
    for threads in thread_counts:
        single = simulate_contention(threads, ops_per_thread, critical,
                                     parallel, num_locks=1,
                                     num_cpus=cfg.num_cpus or threads)
        pervma = simulate_contention(threads, ops_per_thread, critical,
                                     parallel, num_locks=threads,
                                     num_cpus=max(cfg.num_cpus, threads))
        rows.append({
            "threads": threads,
            "one_lock_ops_per_sec": single.throughput_ops_per_sec,
            "per_vma_ops_per_sec": pervma.throughput_ops_per_sec,
            "one_lock_mean_wait_ns": single.mean_wait_ns,
            "fork_stall_ns": fork_stall_ns(
                fork_walk, threads, fault_rate_per_sec=50_000,
                fault_ns=cost.fault_ns),
        })
    return rows


def t3_overcommit(parent_fraction: float = 0.75,
                  total_ram: int = 4 * GIB) -> List[dict]:
    """fork vs spawn of a large parent under each overcommit mode."""
    rows = []
    ballast = int(total_ram * parent_fraction)
    for mode in ("always", "heuristic", "never"):
        kernel = _machine(SimConfig(total_ram=total_ram, overcommit=mode))
        _, thread = _parent_with_ballast(kernel, ballast)
        try:
            pid, _ = kernel.timed_call(thread, "fork", lambda sys: iter(()))
            _cleanup_child(kernel, pid)
            fork_outcome = "ok"
        except SimMemoryError:
            fork_outcome = "ENOMEM"
        try:
            pid, _ = kernel.timed_call(thread, "spawn", TRIVIAL)
            _cleanup_child(kernel, pid)
            spawn_outcome = "ok"
        except SimMemoryError:
            spawn_outcome = "ENOMEM"
        rows.append({
            "mode": mode,
            "parent_bytes": ballast,
            "fork": fork_outcome,
            "spawn": spawn_outcome,
            "committed_pages_peak": kernel.commit.peak_committed,
        })
    return rows


def a1_ablation(size: int = 1 * GIB) -> List[dict]:
    """Where fork's cost lives: remove one mechanism's price at a time."""
    variants = [
        ("full model", SimConfig(total_ram=32 * GIB)),
        ("no PTE-copy cost", SimConfig(
            total_ram=32 * GIB,
            cost_model=CostModel().without(pte_copy_ns=True))),
        ("no write-protect cost", SimConfig(
            total_ram=32 * GIB,
            cost_model=CostModel().without(pte_writeprotect_ns=True))),
        ("no TLB/IPI cost", SimConfig(
            total_ram=32 * GIB,
            cost_model=CostModel().without(tlb_shootdown_ns=True,
                                           ipi_ns=True,
                                           tlb_flush_ns=True))),
        ("eager copy (no COW)", SimConfig(total_ram=32 * GIB,
                                          cow_enabled=False)),
        ("2 MiB huge pages", SimConfig(total_ram=32 * GIB,
                                       page_size=2 * MIB)),
    ]
    rows = []
    for label, config in variants:
        kernel = _machine(config)
        _, thread = _parent_with_ballast(kernel, size)
        rows.append({
            "variant": label,
            "fork_ns": creation_ns(kernel, thread, "fork"),
        })
    return rows


def a3_emulation(sizes: Optional[List[int]] = None) -> List[dict]:
    """Native COW fork vs fork emulated on explicit construction (A3).

    The WSL/Zircon story: a kernel without native fork must emulate it
    through its explicit interfaces, paying an eager page copy per
    resident page and forfeiting COW sharing.  Reports cost and the
    post-creation resident set for both.
    """
    rows = []
    for size in (sizes if sizes is not None else
                 [16 * MIB, 64 * MIB, 256 * MIB, 1 * GIB]):
        # Native fork.
        kernel = _machine()
        parent, thread = _parent_with_ballast(kernel, size)
        rss_before = kernel.allocator.used_frames
        pid, native_ns = kernel.timed_call(thread, "fork",
                                           lambda sys: iter(()))
        native_rss_growth = kernel.allocator.used_frames - rss_before
        _cleanup_child(kernel, pid)
        # Emulated fork on a fresh, identical machine.
        kernel = _machine()
        parent, thread = _parent_with_ballast(kernel, size)
        rss_before = kernel.allocator.used_frames
        pid, emulated_ns = kernel.timed_call(thread, "fork_emulated",
                                             lambda sys: iter(()))
        emulated_rss_growth = kernel.allocator.used_frames - rss_before
        _cleanup_child(kernel, pid)
        rows.append({
            "ballast_bytes": size,
            "native_ns": native_ns,
            "emulated_ns": emulated_ns,
            "slowdown": emulated_ns / native_ns,
            "native_rss_growth_pages": native_rss_growth,
            "emulated_rss_growth_pages": emulated_rss_growth,
        })
    return rows


def a4_fdtable(fd_counts=(0, 64, 1024, 16384)) -> List[dict]:
    """Creation cost vs parent descriptor count (A4).

    fork and posix_spawn both duplicate the descriptor table (POSIX says
    the child inherits it), so both scale with fd count; the
    cross-process API grants only what the parent names, so it is flat.
    A server holding tens of thousands of sockets pays this on every
    fork.
    """
    rows = []
    for nfds in fd_counts:
        kernel = _machine()
        proc, thread = _parent_with_ballast(kernel, 0)
        kernel.vfs.write_file("/tmp/filler", b"")
        for _ in range(nfds):
            kernel.timed_call(thread, "open", "/tmp/filler", "r")
        results = {}
        for mechanism in ("fork", "spawn", "xproc"):
            results[mechanism] = creation_ns(kernel, thread, mechanism)
        rows.append({"fds": nfds, "results": results})
    return rows


def a2_aslr(children: int = 32) -> List[dict]:
    """Layout inheritance per creation API (the security argument).

    For each mechanism, create ``children`` processes from one parent
    and report how many share the parent's exact layout and the entropy
    (log2 of distinct layouts observed).
    """
    rows = []
    for mechanism in ("fork", "spawn", "xproc"):
        kernel = _machine()
        parent, thread = _parent_with_ballast(kernel, 0)
        parent_layout = parent.addrspace.layout_signature()
        layouts = []
        for _ in range(children):
            if mechanism == "fork":
                pid, _ = kernel.timed_call(thread, "fork",
                                           lambda sys: iter(()))
            elif mechanism == "spawn":
                pid, _ = kernel.timed_call(thread, "spawn", TRIVIAL)
            else:
                handle, _ = kernel.timed_call(thread, "xproc_create")
                pid, _ = kernel.timed_call(thread, "xproc_start", handle,
                                           TRIVIAL)
            child = kernel.find_process(pid)
            layouts.append(child.addrspace.layout_signature())
            _cleanup_child(kernel, pid)
        identical = sum(1 for layout in layouts if layout == parent_layout)
        distinct = len(set(layouts))
        rows.append({
            "mechanism": mechanism,
            "children": children,
            "identical_to_parent": identical,
            "distinct_layouts": distinct,
            "entropy_bits": math.log2(distinct) if distinct else 0.0,
        })
    return rows
