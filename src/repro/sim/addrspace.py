"""Address spaces: VMAs, demand paging, copy-on-write, and fork.

This module is the heart of the simulator, because the paper's core
performance claim is about exactly this code path: duplicating an address
space.  Even with copy-on-write, ``fork`` must

1. duplicate every VMA descriptor,
2. copy every present PTE into the child,
3. write-protect every private writable page in the *parent*, and
4. shoot down stale TLB entries on every CPU the parent ran on —

all work proportional to the parent's size, none of which ``posix_spawn``
performs.  :meth:`AddressSpace.fork_into` implements steps 1–4 and charges
them to the shared :class:`~repro.sim.params.WorkCounters`, so the cost
model can price a fork of any address space, real or synthetic.

Content is modelled at page granularity: a page holds one token (any
value), reads return it, and copy-on-write isolation is checked token by
token in the tests.  Bulk-populated ranges (benchmark ballast) are carried
by :class:`~repro.sim.vma.BulkRun` descriptors so a simulated 8 GiB heap
costs a handful of Python objects while still being charged for two
million page copies when forked.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Tuple

from ..errors import SimError, SimMemoryError, SimSegfault
from .frames import AggregateFrame, Frame, FrameAllocator
from .overcommit import CommitPolicy
from .pagetable import PTE, PageTable
from .params import (GIB, MIB, SimConfig, WorkCounters, page_align_down,
                     page_align_up, pages_for)
from .shm import ShmBacking
from .tlb import TLBModel
from .vma import VMA, BulkRun, parse_prot

# Canonical x86-64-ish user layout (bytes).
TEXT_BASE = 0x0000_0000_0040_0000
HEAP_FLOOR = 0x0000_0000_1000_0000
MMAP_FLOOR = 0x0000_1000_0000_0000
MMAP_CEILING = 0x0000_7000_0000_0000
STACK_CEILING = 0x0000_7FFF_FFFF_F000
DEFAULT_STACK_BYTES = 8 * MIB

#: The global shared zero page.  Read faults on untouched anonymous memory
#: map it (as Linux does); it is never charged to any frame budget and its
#: refcount is not maintained.
ZERO_FRAME = Frame(value=None)


class AddressSpace:
    """One process's virtual address space.

    Usually created through :class:`~repro.sim.kernel.Kernel`, which wires
    in the machine-shared allocator, TLB, commit policy and counters; it
    can also stand alone for unit tests, in which case private instances
    of each are created.
    """

    _asids = itertools.count(1)

    def __init__(self, config: Optional[SimConfig] = None, *,
                 allocator: Optional[FrameAllocator] = None,
                 tlb: Optional[TLBModel] = None,
                 commit: Optional[CommitPolicy] = None,
                 counters: Optional[WorkCounters] = None,
                 rng: Optional[random.Random] = None,
                 name: str = "as"):
        self.config = config if config is not None else SimConfig()
        self.counters = counters if counters is not None else WorkCounters()
        self.allocator = (allocator if allocator is not None else
                          FrameAllocator(self.config.total_frames,
                                         self.counters))
        self.tlb = (tlb if tlb is not None else
                    TLBModel(self.config.num_cpus, self.counters))
        self.commit = (commit if commit is not None else
                       CommitPolicy(self.config.total_frames,
                                    self.config.overcommit))
        self.rng = rng if rng is not None else random.Random(
            self.config.rng_seed)
        self.name = name
        self.asid = next(self._asids)
        self.page_size = self.config.page_size
        self.pagetable = PageTable(self.counters)
        self.vmas: List[VMA] = []
        self.commit_pages = 0
        self.dead = False
        self._randomize_layout()
        self.brk = self.heap_base
        self.tlb.activate(self.asid, cpu=0)

    # ------------------------------------------------------------------
    # Layout and ASLR
    # ------------------------------------------------------------------

    def _randomize_layout(self) -> None:
        """Pick randomised region bases (ASLR).

        Fork *copies* the resulting layout into the child verbatim, while
        exec/spawn re-randomises — the asymmetry experiment A2 measures.
        """
        bits = self.config.aslr_entropy_bits
        page = self.page_size

        def slide(modulus: int) -> int:
            if bits <= 0:
                return 0
            return (self.rng.getrandbits(bits) * page) % modulus

        self.text_base = page_align_up(TEXT_BASE, page)
        self.heap_base = page_align_up(HEAP_FLOOR + slide(1 * GIB), page)
        self.mmap_top = page_align_down(MMAP_CEILING - slide(64 * GIB), page)
        self.stack_top = page_align_down(STACK_CEILING - slide(1 * GIB),
                                         page)

    def layout_signature(self) -> Tuple[int, int, int, int]:
        """The randomised bases, for entropy measurements (A2)."""
        return (self.text_base, self.heap_base, self.mmap_top, self.stack_top)

    # ------------------------------------------------------------------
    # VMA bookkeeping
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.dead:
            raise SimError(f"address space {self.name!r} was destroyed")

    def find_vma(self, addr: int) -> Optional[VMA]:
        """The VMA containing ``addr``, or ``None``."""
        for vma in self.vmas:
            if vma.contains(addr):
                return vma
        return None

    def _insert_vma(self, vma: VMA) -> None:
        for existing in self.vmas:
            if existing.overlaps(vma.start, vma.end):
                raise SimError(f"{vma!r} overlaps {existing!r}")
        self.vmas.append(vma)
        self.vmas.sort(key=lambda v: v.start)

    def _vpn(self, addr: int) -> int:
        return addr // self.page_size

    def _find_gap(self, length: int) -> int:
        """Top-down search of the mmap region for a free range.

        The region runs from ``MMAP_FLOOR`` up to this space's
        (ASLR-slid) ``mmap_top``; mappings outside it — the program
        image down low, the stack up high — are skipped over, not
        squeezed under.
        """
        ceiling = self.mmap_top
        for vma in sorted(self.vmas, key=lambda v: v.start, reverse=True):
            if vma.start >= ceiling:
                continue
            if vma.end <= ceiling - length and ceiling - length >= MMAP_FLOOR:
                return ceiling - length
            ceiling = vma.start
        if ceiling - length >= MMAP_FLOOR:
            return ceiling - length
        raise SimMemoryError("mmap region exhausted")

    def _charges_commit(self, vma: VMA) -> bool:
        """Whether a mapping counts against the commit limit.

        Private writable memory is a promise of distinct pages; shared
        and read-only mappings are not (matching Linux's accounting).
        """
        return vma.writable and not vma.shared

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------

    def map(self, length: int, prot: str = "rw", *, shared: bool = False,
            addr: Optional[int] = None, name: str = "[anon]",
            inode=None, file_offset: int = 0) -> VMA:
        """Create a mapping of ``length`` bytes; returns the new VMA.

        With ``addr=None`` an address is chosen top-down in the mmap
        region (subject to ASLR).  Private writable mappings are charged
        against the commit limit and may raise :class:`SimMemoryError`
        under ``never`` overcommit.
        """
        self._check_alive()
        if length <= 0:
            raise SimError("mapping needs a positive length")
        length = page_align_up(length, self.page_size)
        if addr is None:
            addr = self._find_gap(length)
        elif addr % self.page_size:
            raise SimError(f"unaligned mapping address {addr:#x}")
        if shared and inode is None:
            # MAP_SHARED|MAP_ANONYMOUS is backed by a fresh shm object so
            # every inheritor (fork keeps sharing it) sees the same pages.
            inode = ShmBacking(self.allocator, length, name=name)
        vma = VMA(addr, addr + length, prot, shared=shared, name=name,
                  inode=inode, file_offset=file_offset)
        if self._charges_commit(vma):
            pages = length // self.page_size
            self.commit.charge(pages)
            self.commit_pages += pages
        self._insert_vma(vma)
        self._acquire_backing(vma)
        return vma

    @staticmethod
    def _acquire_backing(vma: VMA) -> None:
        if vma.inode is not None and hasattr(vma.inode, "acquire_mapping"):
            vma.inode.acquire_mapping()

    def _release_backing(self, vma: VMA) -> None:
        if vma.inode is not None and hasattr(vma.inode, "release_mapping"):
            vma.inode.release_mapping(self.allocator)

    def _split_vma(self, vma: VMA, at: int) -> Tuple[VMA, VMA]:
        """Split ``vma`` at page-aligned address ``at``; returns (lo, hi)."""
        if not vma.start < at < vma.end:
            raise SimError(f"split point {at:#x} outside {vma!r}")
        hi = VMA(at, vma.end, vma.prot, shared=vma.shared, name=vma.name,
                 inode=vma.inode,
                 file_offset=vma.file_offset + (at - vma.start))
        vma.end = at
        split_vpn = self._vpn(at)
        keep, move = [], []
        for run in vma.bulk_runs:
            if run.end_vpn <= split_vpn:
                keep.append(run)
            elif run.start_vpn >= split_vpn:
                move.append(run)
            else:
                self._split_run(run, split_vpn, keep, move)
        vma.bulk_runs = keep
        hi.bulk_runs = move
        hi.touched_vpns = {v for v in vma.touched_vpns if v >= split_vpn}
        vma.touched_vpns = {v for v in vma.touched_vpns if v < split_vpn}
        self._acquire_backing(hi)  # two VMAs now reference the backing
        self.vmas.append(hi)
        self.vmas.sort(key=lambda v: v.start)
        return vma, hi

    def _split_run(self, run: BulkRun, split_vpn: int, keep: list,
                   move: list) -> None:
        """Divide a bulk run straddling ``split_vpn`` into two runs.

        Sole-owned aggregates are split exactly (each half releasable on
        its own); fork-shared aggregates are shared by both halves with
        an extra reference, the bulk path's documented approximation.
        Halves with no mapped pages are dropped rather than created.
        """
        lo_exc = {e for e in run.exceptions if e < split_vpn}
        hi_exc = {e for e in run.exceptions if e >= split_vpn}
        lo_mapped = (split_vpn - run.start_vpn) - len(lo_exc)
        hi_mapped = (run.end_vpn - split_vpn) - len(hi_exc)
        if lo_mapped == 0 and hi_mapped == 0:
            self.allocator.decref(run.agg)
            return
        if lo_mapped == 0:
            move.append(BulkRun(split_vpn, run.end_vpn - split_vpn, run.agg,
                                run.writable, run.cow, hi_exc))
            return
        if hi_mapped == 0:
            keep.append(BulkRun(run.start_vpn, split_vpn - run.start_vpn,
                                run.agg, run.writable, run.cow, lo_exc))
            return
        if run.agg.refcount == 1:
            hi_agg = self.allocator.split_aggregate(run.agg, hi_mapped)
        else:
            hi_agg = run.agg
            self.allocator.incref(run.agg)
        keep.append(BulkRun(run.start_vpn, split_vpn - run.start_vpn,
                            run.agg, run.writable, run.cow, lo_exc))
        move.append(BulkRun(split_vpn, run.end_vpn - split_vpn, hi_agg,
                            run.writable, run.cow, hi_exc))

    def _isolate_range(self, start: int, end: int) -> List[VMA]:
        """Split VMAs so that ``[start, end)`` is covered by whole VMAs."""
        for vma in list(self.vmas):
            if vma.start < start < vma.end:
                self._split_vma(vma, start)
        for vma in list(self.vmas):
            if vma.start < end < vma.end:
                self._split_vma(vma, end)
        return [v for v in self.vmas if v.start >= start and v.end <= end]

    def _drop_run(self, run: BulkRun) -> None:
        """Release a whole bulk run's pages and reference."""
        mapped = run.mapped_pages()
        if run.agg.refcount == 1 and mapped:
            self.allocator.release_from_aggregate(run.agg, mapped)
        self.allocator.decref(run.agg)

    def _drop_sparse_range(self, start_vpn: int, end_vpn: int) -> None:
        for vpn, pte in list(self.pagetable.entries_in(start_vpn, end_vpn)):
            self.pagetable.remove(vpn)
            if not pte.zero:
                self.allocator.decref(pte.frame)

    def unmap(self, addr: int, length: int) -> None:
        """Remove mappings in ``[addr, addr+length)``; partial unmaps split.

        Frees sparse frames, trims or drops bulk runs, releases commit
        charge for private writable pages, and shoots down the TLB.
        """
        self._check_alive()
        if length <= 0:
            raise SimError("unmap needs a positive length")
        start = page_align_down(addr, self.page_size)
        end = page_align_up(addr + length, self.page_size)
        victims = self._isolate_range(start, end)
        if not victims:
            return
        for vma in victims:
            self._drop_sparse_range(self._vpn(vma.start), self._vpn(vma.end))
            for run in vma.bulk_runs:
                self._drop_run(run)
            vma.bulk_runs = []
            if self._charges_commit(vma):
                pages = vma.length // self.page_size
                self.commit.uncharge(pages)
                self.commit_pages -= pages
            self._release_backing(vma)
            self.vmas.remove(vma)
        self.tlb.shootdown(self.asid)

    def protect(self, addr: int, length: int, prot: str) -> None:
        """Change protection on ``[addr, addr+length)`` (``mprotect``).

        Removing write access downgrades every mapped page and costs a
        TLB shootdown; granting write only updates descriptors (pages
        fault their way back to writable lazily).  Commit charge follows
        the private-writable rule.
        """
        self._check_alive()
        start = page_align_down(addr, self.page_size)
        end = page_align_up(addr + length, self.page_size)
        new_prot = parse_prot(prot)
        targets = self._isolate_range(start, end)
        if not targets:
            raise SimSegfault(addr, "mprotect")
        losing_write = False
        for vma in targets:
            was_charged = self._charges_commit(vma)
            had_write = vma.writable
            vma.prot = new_prot
            now_charged = self._charges_commit(vma)
            pages = vma.length // self.page_size
            if now_charged and not was_charged:
                self.commit.charge(pages)
                self.commit_pages += pages
            elif was_charged and not now_charged:
                self.commit.uncharge(pages)
                self.commit_pages -= pages
            if had_write and "w" not in new_prot:
                losing_write = True
                for _, pte in self.pagetable.entries_in(
                        self._vpn(vma.start), self._vpn(vma.end)):
                    if pte.writable:
                        pte.writable = False
                        self.counters.ptes_writeprotected += 1
                for run in vma.bulk_runs:
                    if run.writable:
                        run.writable = False
                        self.counters.ptes_writeprotected += run.mapped_pages()
        if losing_write:
            self.tlb.shootdown(self.asid)

    def sbrk(self, delta: int) -> int:
        """Grow (or shrink) the heap; returns the new break address.

        The heap is a private anonymous writable VMA starting at the
        (ASLR-randomised) heap base, managed exactly like Linux's ``brk``.
        """
        self._check_alive()
        new_brk = page_align_up(self.brk + delta, self.page_size)
        if new_brk < self.heap_base:
            raise SimError("brk below heap base")
        old_brk = self.brk
        if new_brk > old_brk:
            if old_brk == self.heap_base:
                self.map(new_brk - self.heap_base, "rw",
                         addr=self.heap_base, name="[heap]")
            else:
                heap = self.find_vma(self.heap_base)
                grow = new_brk - old_brk
                pages = grow // self.page_size
                self.commit.charge(pages)
                self.commit_pages += pages
                heap.end = new_brk
        elif new_brk < old_brk:
            self.unmap(new_brk, old_brk - new_brk)
        self.brk = new_brk
        return self.brk

    # ------------------------------------------------------------------
    # Access: reads, writes, faults
    # ------------------------------------------------------------------

    def _vma_for_access(self, addr: int, access: str) -> VMA:
        vma = self.find_vma(addr)
        if vma is None:
            raise SimSegfault(addr, access)
        if access == "read" and not vma.readable:
            raise SimSegfault(addr, access)
        if access == "write" and not vma.writable:
            raise SimSegfault(addr, access)
        return vma

    def _file_page_index(self, vma: VMA, vpn: int) -> int:
        page_off = (vpn * self.page_size - vma.start) + vma.file_offset
        return page_off // self.page_size

    def _shared_access(self, vma: VMA, vpn: int, access: str, value):
        """Read or write a MAP_SHARED page through its backing object.

        Shared mappings never hold page content locally — that is what
        makes them shared.  The first access per page counts a fault and
        a PTE install, like the real demand-paging path.
        """
        if vpn not in vma.touched_vpns:
            vma.touched_vpns.add(vpn)
            self.counters.faults += 1
            self.counters.pte_writes += 1
        page = self._file_page_index(vma, vpn)
        if access == "read":
            return vma.inode.page_value(page)
        vma.inode.write_page(page, value)
        return None

    def read(self, addr: int):
        """Read the content token of the page containing ``addr``.

        Untouched anonymous pages read as ``None`` through the shared
        zero page; file pages read through to the backing inode; shared
        mappings always go through their backing object.  First touches
        take a (counted) fault.
        """
        self._check_alive()
        vma = self._vma_for_access(addr, "read")
        vpn = self._vpn(addr)
        if vma.shared:
            return self._shared_access(vma, vpn, "read", None)
        pte = self.pagetable.get(vpn)
        if pte is not None:
            return pte.frame.value
        run = vma.run_covering(vpn)
        if run is not None:
            return run.agg.value
        # Demand fault.
        self.counters.faults += 1
        if vma.anonymous:
            self.pagetable.install(vpn, PTE(ZERO_FRAME, writable=False,
                                            zero=True))
            return None
        # Private file mapping: materialise a page-cache copy, read-only
        # so a later write goes through the fault path.
        frame = self.allocator.alloc(
            vma.inode.page_value(self._file_page_index(vma, vpn)))
        self.pagetable.install(vpn, PTE(frame, writable=False))
        return frame.value

    def write(self, addr: int, value) -> None:
        """Write a content token to the page containing ``addr``.

        Handles demand-zero faults, copy-on-write breaks (sole-owner
        reuse vs. page copy), and eviction of individually-written pages
        out of bulk runs into the sparse page table.
        """
        self._check_alive()
        vma = self._vma_for_access(addr, "write")
        vpn = self._vpn(addr)
        if vma.shared:
            self._shared_access(vma, vpn, "write", value)
            return
        pte = self.pagetable.get(vpn)
        if pte is not None:
            self._write_sparse(vma, vpn, pte, value)
            return
        run = vma.run_covering(vpn)
        if run is not None:
            self._write_into_run(vma, run, vpn, value)
            return
        # Demand fault on an untouched page.
        self.counters.faults += 1
        if vma.anonymous:
            self.counters.zero_fills += 1
            frame = self.allocator.alloc(value)
            self.pagetable.install(vpn, PTE(frame, writable=True))
            return
        # Private file mapping, never read: copy the file page, overwrite.
        self.counters.pages_copied += 1
        frame = self.allocator.alloc(value)
        self.pagetable.install(vpn, PTE(frame, writable=True))

    def _write_sparse(self, vma: VMA, vpn: int, pte: PTE, value) -> None:
        if pte.writable:
            pte.frame.value = value
            return
        # Write fault on a read-only PTE inside a writable VMA: demand
        # zero, COW reuse, or COW break, decided by who else maps the
        # frame.
        self.counters.faults += 1
        if pte.zero:
            self.counters.zero_fills += 1
            frame = self.allocator.alloc(value)
            self.pagetable.update(vpn, frame=frame, writable=True, zero=False,
                                  cow=False)
            return
        if pte.frame.refcount == 1:
            # Sole mapper (other sharers exited or broke their copies, or
            # this is a private file page / post-mprotect restore): flip
            # writable without copying.
            if pte.cow:
                self.counters.cow_reuses += 1
            pte.frame.value = value
            self.pagetable.update(vpn, writable=True, cow=False)
            self.tlb.flush_local(self.asid)
            return
        self.counters.cow_breaks += 1
        self.counters.pages_copied += 1
        old = pte.frame
        frame = self.allocator.alloc(value)
        self.allocator.decref(old)
        self.pagetable.update(vpn, frame=frame, writable=True, cow=False)
        self.tlb.flush_local(self.asid)

    def _write_into_run(self, vma: VMA, run: BulkRun, vpn: int, value) -> None:
        if run.cow and run.agg.refcount == 1:
            # Sole owner of the whole run: regain write access in bulk.
            self.counters.cow_reuses += 1
            run.cow = False
            run.writable = True
            self.tlb.flush_local(self.asid)
        if not run.writable and not run.cow:
            # Write-protected by an earlier mprotect; the VMA has since
            # been granted write again, so restore access on fault.
            self.counters.faults += 1
            run.writable = True
        if run.writable and not run.cow:
            run.exceptions.add(vpn)
            frame = self.allocator.split_from_aggregate(run.agg)
            frame.value = value
            self.pagetable.install(vpn, PTE(frame, writable=True))
            return
        # COW break out of a shared run.
        self.counters.faults += 1
        self.counters.cow_breaks += 1
        self.counters.pages_copied += 1
        run.exceptions.add(vpn)
        frame = self.allocator.split_from_aggregate(run.agg)
        frame.value = value
        self.pagetable.install(vpn, PTE(frame, writable=True))
        self.tlb.flush_local(self.asid)

    def populate(self, addr: int, nbytes: int, value=None) -> int:
        """Bulk-populate ``[addr, addr+nbytes)`` with dirty anonymous pages.

        This is the ballast path: it creates :class:`BulkRun` descriptors
        (one per uncovered gap) and charges the same work a page-by-page
        dirtying loop would — one fault, one zero fill, one PTE write per
        page — without materialising per-page objects.  Returns the number
        of pages populated.
        """
        self._check_alive()
        if nbytes <= 0:
            raise SimError("populate needs a positive size")
        start = page_align_down(addr, self.page_size)
        end = page_align_up(addr + nbytes, self.page_size)
        total = 0
        cursor = start
        while cursor < end:
            vma = self.find_vma(cursor)
            if (vma is None or not vma.writable or not vma.anonymous
                    or vma.shared):
                raise SimSegfault(cursor, "populate")
            span_end = min(end, vma.end)
            total += self._populate_vma(vma, self._vpn(cursor),
                                        self._vpn(span_end), value)
            cursor = span_end
        return total

    def _populate_vma(self, vma: VMA, start_vpn: int, end_vpn: int,
                      value) -> int:
        covered = []
        for run in vma.bulk_runs:
            lo, hi = max(run.start_vpn, start_vpn), min(run.end_vpn, end_vpn)
            if hi > lo:
                covered.append((lo, hi))
        for vpn, _ in self.pagetable.entries_in(start_vpn, end_vpn):
            covered.append((vpn, vpn + 1))
        covered.sort()
        gaps = []
        cursor = start_vpn
        for lo, hi in covered:
            if lo > cursor:
                gaps.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < end_vpn:
            gaps.append((cursor, end_vpn))
        populated = 0
        for lo, hi in gaps:
            n = hi - lo
            agg = self.allocator.alloc_aggregate(n, value)
            vma.bulk_runs.append(BulkRun(lo, n, agg, writable=True))
            self.counters.faults += n
            self.counters.zero_fills += n
            self.counters.pte_writes += n
            populated += n
        return populated

    def dirty(self, addr: int, nbytes: int, value=None) -> int:
        """Write ``value`` to *every* page in the range, COW included.

        Unlike :meth:`populate` (which only fills gaps), this is the
        bulk equivalent of storing to each page: untouched pages
        materialise, COW-shared pages break (charging a copy per page),
        already-private pages are overwritten in place.  Returns the
        number of pages written.  This is what "the child dirties its
        inherited heap" means, at ballast scale.
        """
        self._check_alive()
        if nbytes <= 0:
            raise SimError("dirty needs a positive size")
        start = page_align_down(addr, self.page_size)
        end = page_align_up(addr + nbytes, self.page_size)
        total = 0
        for vma in self._isolate_range(start, end):
            if not vma.writable or not vma.anonymous or vma.shared:
                raise SimSegfault(vma.start, "dirty")
            lo, hi = self._vpn(vma.start), self._vpn(vma.end)
            # Individually-tracked pages: ordinary writes.
            for vpn, pte in list(self.pagetable.entries_in(lo, hi)):
                self._write_sparse(vma, vpn, pte, value)
                total += 1
            # Bulk runs: break or overwrite whole runs at aggregate cost.
            for run in vma.bulk_runs:
                mapped = run.mapped_pages()
                if mapped == 0:
                    continue
                if run.cow and run.agg.refcount > 1:
                    new_agg = self.allocator.alloc_aggregate(mapped, value)
                    self.allocator.decref(run.agg)
                    run.agg = new_agg
                    run.cow = False
                    run.writable = True
                    self.counters.faults += mapped
                    self.counters.cow_breaks += mapped
                    self.counters.pages_copied += mapped
                    self.tlb.flush_local(self.asid)
                else:
                    if run.cow:  # sole owner: regain write in bulk
                        self.counters.cow_reuses += mapped
                        run.cow = False
                        run.writable = True
                        self.tlb.flush_local(self.asid)
                    run.agg.value = value
                total += mapped
            # Untouched gaps: populate them with the value.
            total += self._populate_vma(vma, lo, hi, value)
        return total

    # ------------------------------------------------------------------
    # fork
    # ------------------------------------------------------------------

    def fork_into(self, child: "AddressSpace") -> None:
        """Duplicate this address space into a fresh, empty ``child``.

        Implements copy-on-write fork (or eager-copy when the config
        disables COW): commit is charged up front for every private
        writable page the child could dirty, descriptors and PTEs are
        duplicated, private writable pages are write-protected in both
        parent and child, and the parent's TLB is shot down.  On a commit
        refusal (``never`` overcommit) the child is left untouched — the
        ENOMEM the paper says large processes hit when they fork.
        """
        self._check_alive()
        if child.vmas or len(child.pagetable):
            raise SimError("fork target must be an empty address space")
        commit_pages = sum(
            v.length // self.page_size for v in self.vmas
            if self._charges_commit(v))
        self.commit.charge(commit_pages)  # may raise SimMemoryError
        child.commit_pages += commit_pages
        cow = self.config.cow_enabled
        for vma in self.vmas:
            child_runs = []
            for run in vma.bulk_runs:
                child_runs.append(self._fork_run(vma, run, cow))
            child_vma = vma.clone_for_fork(child_runs)
            child._insert_vma(child_vma)
            self._acquire_backing(child_vma)
            self.counters.ptes_copied += len(vma.touched_vpns)
            self._fork_sparse(vma, child, cow)
        child.brk = self.brk
        # Fork inherits the parent's layout verbatim — no fresh ASLR.
        child.text_base = self.text_base
        child.heap_base = self.heap_base
        child.mmap_top = self.mmap_top
        child.stack_top = self.stack_top
        self.tlb.shootdown(self.asid)

    def _fork_run(self, vma: VMA, run: BulkRun, cow: bool) -> BulkRun:
        mapped = run.mapped_pages()
        if vma.shared or not vma.writable:
            # Shared (or unwritable) mappings are simply shared.
            self.allocator.incref(run.agg)
            self.counters.ptes_copied += mapped
            return BulkRun(run.start_vpn, run.npages, run.agg, run.writable,
                           run.cow, run.exceptions)
        if cow:
            self.allocator.incref(run.agg)
            if run.writable:
                run.writable = False
                run.cow = True
                self.counters.ptes_writeprotected += mapped
            self.counters.ptes_copied += mapped
            return BulkRun(run.start_vpn, run.npages, run.agg,
                           writable=False, cow=True,
                           exceptions=run.exceptions)
        # Eager copy (pre-COW Unix; the A1 ablation point).
        agg = self.allocator.alloc_aggregate(max(mapped, 1), run.agg.value)
        if mapped == 0:
            self.allocator.release_from_aggregate(agg, 1)
        self.counters.pages_copied += mapped
        self.counters.ptes_copied += mapped
        return BulkRun(run.start_vpn, run.npages, agg, writable=True,
                       cow=False, exceptions=run.exceptions)

    def _fork_sparse(self, vma: VMA, child: "AddressSpace", cow: bool) -> None:
        lo, hi = self._vpn(vma.start), self._vpn(vma.end)
        for vpn, pte in self.pagetable.entries_in(lo, hi):
            self.counters.ptes_copied += 1
            if pte.zero:
                child.pagetable.install(vpn, PTE(ZERO_FRAME, writable=False,
                                                 zero=True))
                continue
            if vma.shared or not vma.writable:
                self.allocator.incref(pte.frame)
                child.pagetable.install(
                    vpn, PTE(pte.frame, pte.writable, pte.cow))
                continue
            if cow:
                self.allocator.incref(pte.frame)
                if pte.writable:
                    pte.writable = False
                    pte.cow = True
                    self.counters.ptes_writeprotected += 1
                child.pagetable.install(
                    vpn, PTE(pte.frame, writable=False, cow=True))
            else:
                frame = self.allocator.alloc(pte.frame.value)
                self.counters.pages_copied += 1
                child.pagetable.install(vpn, PTE(frame, writable=True))

    def snapshot(self, *, name: Optional[str] = None
                 ) -> "AddressSpaceSnapshot":
        """Checkpoint this space as a frozen COW spawn source.

        Pays fork's write-protect sweep against the live parent ONCE,
        producing a frozen copy that is never executed and never
        written.  Each later :meth:`AddressSpaceSnapshot.restore_into`
        COW-forks from the *frozen* image, whose size is fixed at
        checkpoint time — so restore cost stays flat no matter how
        large the live parent grows afterwards (the template-zygote
        story, replayed in the simulator's pagetable machinery).
        """
        self._check_alive()
        frozen = AddressSpace(
            self.config, allocator=self.allocator, tlb=self.tlb,
            commit=self.commit, counters=self.counters,
            rng=random.Random(0),
            name=name if name is not None else f"{self.name}@snap")
        self.fork_into(frozen)
        return AddressSpaceSnapshot(frozen, source=self.name)

    # ------------------------------------------------------------------
    # Accounting and teardown
    # ------------------------------------------------------------------

    def resident_pages(self) -> int:
        """Pages of real memory currently mapped (RSS, zero page excluded)."""
        total = self.pagetable.resident_pages()
        for vma in self.vmas:
            for run in vma.bulk_runs:
                total += run.mapped_pages()
        return total

    def resident_bytes(self) -> int:
        """RSS in bytes."""
        return self.resident_pages() * self.page_size

    def virtual_bytes(self) -> int:
        """Total mapped virtual size (VSZ)."""
        return sum(v.length for v in self.vmas)

    def destroy(self) -> None:
        """Release everything the address space holds (process exit)."""
        if self.dead:
            return
        for vma in list(self.vmas):
            self._drop_sparse_range(self._vpn(vma.start), self._vpn(vma.end))
            for run in vma.bulk_runs:
                self._drop_run(run)
            vma.bulk_runs = []
            if self._charges_commit(vma):
                pages = vma.length // self.page_size
                self.commit.uncharge(pages)
                self.commit_pages -= pages
            self._release_backing(vma)
        self.vmas = []
        self.tlb.retire(self.asid)
        self.dead = True

    def __repr__(self):
        return (f"<AddressSpace {self.name!r} asid={self.asid} "
                f"vmas={len(self.vmas)} rss={self.resident_pages()}p>")


class AddressSpaceSnapshot:
    """A frozen address-space checkpoint, usable as a spawn source.

    Produced by :meth:`AddressSpace.snapshot`.  The wrapped space holds
    COW references to the checkpointed pages; every restore is a pure
    COW share of that fixed-size image.  :meth:`destroy` releases the
    frames (restored children keep theirs — frame refcounting already
    handles shared aggregates outliving any one space).
    """

    __slots__ = ("space", "source", "restores")

    def __init__(self, space: AddressSpace, *, source: str = "?"):
        self.space = space
        self.source = source
        self.restores = 0

    @property
    def name(self) -> str:
        return self.space.name

    @property
    def dead(self) -> bool:
        return self.space.dead

    def resident_pages(self) -> int:
        return self.space.resident_pages()

    def virtual_bytes(self) -> int:
        return self.space.virtual_bytes()

    def restore_into(self, child: AddressSpace) -> None:
        """COW-fork the frozen image into a fresh, empty ``child``."""
        if self.space.dead:
            raise SimError(f"snapshot {self.name!r} has been destroyed")
        self.space.fork_into(child)
        self.restores += 1

    def destroy(self) -> None:
        self.space.destroy()

    def __repr__(self):
        return (f"<AddressSpaceSnapshot {self.name!r} of {self.source!r} "
                f"restores={self.restores}>")
