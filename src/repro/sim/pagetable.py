"""Per-address-space page tables.

The simulator keeps a *sparse* page table: a mapping from virtual page
number (vpn) to :class:`PTE` for every individually-touched page.  Pages
populated in bulk (benchmark ballast) live in :class:`~repro.sim.vma.BulkRun`
descriptors on their VMA instead — see :mod:`repro.sim.vma` — so the page
table stays proportional to the pages a program actually manipulated one
by one.

Hardware page tables are radix trees; walking and copying them costs real
time per entry.  We model that cost (``pte_copy_ns`` etc. in the cost
model) without modelling the tree shape, which no experiment depends on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import SimError
from .params import WorkCounters


class PTE:
    """A page-table entry: which frame a vpn maps and with what rights.

    ``cow`` marks a page that is mapped read-only *only because* it is
    copy-on-write shared; a write fault on it duplicates the frame rather
    than raising a protection error.  ``zero`` marks the global shared
    zero page (read faults on untouched anonymous memory map it, as Linux
    does), which is never charged to the frame budget.
    """

    __slots__ = ("frame", "writable", "cow", "zero")

    def __init__(self, frame, writable: bool, cow: bool = False,
                 zero: bool = False):
        self.frame = frame
        self.writable = writable
        self.cow = cow
        self.zero = zero

    def __repr__(self):
        bits = "".join(
            b for b, on in (("W", self.writable), ("C", self.cow),
                            ("Z", self.zero)) if on)
        return f"<PTE frame={getattr(self.frame, 'index', None)} {bits or '-'}>"


class PageTable:
    """Sparse vpn → :class:`PTE` map with work accounting.

    Every install/update/remove is charged to the shared
    :class:`WorkCounters` so the cost model can price address-space
    operations.  The table does not own frame refcounts — the address
    space does — it is pure mapping state.
    """

    def __init__(self, counters: Optional[WorkCounters] = None):
        self._entries: Dict[int, PTE] = {}
        self.counters = counters if counters is not None else WorkCounters()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def get(self, vpn: int) -> Optional[PTE]:
        """The PTE for ``vpn``, or ``None`` if not present."""
        return self._entries.get(vpn)

    def install(self, vpn: int, pte: PTE) -> None:
        """Install a fresh entry; it is an error if one is present."""
        if vpn in self._entries:
            raise SimError(f"PTE already present for vpn {vpn}")
        self._entries[vpn] = pte
        self.counters.pte_writes += 1

    def update(self, vpn: int, *, frame=None, writable=None, cow=None,
               zero=None) -> PTE:
        """Modify an existing entry in place; charges one PTE write."""
        pte = self._entries.get(vpn)
        if pte is None:
            raise SimError(f"no PTE for vpn {vpn}")
        if frame is not None:
            pte.frame = frame
        if writable is not None:
            pte.writable = writable
        if cow is not None:
            pte.cow = cow
        if zero is not None:
            pte.zero = zero
        self.counters.pte_writes += 1
        return pte

    def remove(self, vpn: int) -> PTE:
        """Remove and return the entry for ``vpn``."""
        try:
            pte = self._entries.pop(vpn)
        except KeyError:
            raise SimError(f"no PTE for vpn {vpn}") from None
        self.counters.pte_writes += 1
        return pte

    def entries(self) -> Iterator[Tuple[int, PTE]]:
        """Iterate ``(vpn, pte)`` pairs in vpn order."""
        for vpn in sorted(self._entries):
            yield vpn, self._entries[vpn]

    def entries_in(self, start_vpn: int, end_vpn: int) -> Iterator[Tuple[int, PTE]]:
        """Iterate entries with ``start_vpn <= vpn < end_vpn``."""
        # The sparse table is small by construction; a filtered scan is
        # simpler than an ordered index and never shows up in profiles.
        for vpn in sorted(self._entries):
            if start_vpn <= vpn < end_vpn:
                yield vpn, self._entries[vpn]

    def resident_pages(self) -> int:
        """Entries backed by real memory (excludes zero-page mappings)."""
        return sum(1 for pte in self._entries.values() if not pte.zero)
