"""Shared-memory backing objects for MAP_SHARED anonymous mappings.

A MAP_SHARED anonymous region must show every sharer the same bytes, no
matter how it was inherited (fork keeps sharing it; that is the one kind
of memory fork does *not* snapshot).  Linux backs such regions with an
internal tmpfs inode; this module is the simulator's equivalent.

Page content lives here, keyed by page index within the object, and every
mapping of the object reads/writes through it.  Frames are charged to the
machine's allocator on first write of each page and released when the last
mapping goes away.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..errors import SimError
from .frames import Frame, FrameAllocator


class ShmBacking:
    """An anonymous shared-memory object (Linux's shmem inode).

    Implements the backing protocol the address space expects of any
    mappable object: :meth:`page_value`, :meth:`write_page`,
    :meth:`acquire_mapping`, :meth:`release_mapping`.
    """

    _ids = itertools.count()

    def __init__(self, allocator: FrameAllocator, nbytes: int,
                 name: str = "[shm]"):
        self.id = next(self._ids)
        self.allocator = allocator
        self.nbytes = nbytes
        self.name = name
        self.pages: Dict[int, Frame] = {}
        self.mappings = 0
        self.dead = False

    def page_value(self, page_index: int):
        """Content token of one page (``None`` if never written)."""
        frame = self.pages.get(page_index)
        return frame.value if frame is not None else None

    def write_page(self, page_index: int, value) -> None:
        """Write one page; first touch charges a physical frame."""
        if self.dead:
            raise SimError("write to a released shm object")
        frame = self.pages.get(page_index)
        if frame is None:
            self.pages[page_index] = self.allocator.alloc(value)
        else:
            frame.value = value

    def resident_pages(self) -> int:
        """Physical pages the object currently holds."""
        return len(self.pages)

    def acquire_mapping(self) -> None:
        """Register one more mapping of this object."""
        if self.dead:
            raise SimError("mapping a released shm object")
        self.mappings += 1

    def release_mapping(self, allocator: Optional[FrameAllocator] = None) -> None:
        """Drop one mapping; the last one frees every page."""
        if self.mappings <= 0:
            raise SimError("shm mapping refcount underflow")
        self.mappings -= 1
        if self.mappings == 0:
            for frame in self.pages.values():
                self.allocator.decref(frame)
            self.pages.clear()
            self.dead = True

    def __repr__(self):
        return (f"<ShmBacking #{self.id} {self.name} "
                f"pages={len(self.pages)} maps={self.mappings}>")
