"""TLB cost model: local flushes and remote shootdowns.

Fork must write-protect every private writable page in the *parent*, and
stale writable translations may be cached on any CPU the parent has run
on — so the kernel broadcasts inter-processor interrupts and each target
flushes.  This machinery is one of the size-dependent costs the paper
charges against fork; ``posix_spawn`` never touches the parent's page
tables and never pays it.

The model tracks which CPUs have each address space active and converts
invalidations into counted work (``tlb_shootdowns``, ``ipis``,
``tlb_flushes``).  It does not cache individual translations: no
experiment depends on hit rates, only on invalidation traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .params import WorkCounters


class TLBModel:
    """Machine-wide TLB bookkeeping.

    One instance per simulated machine.  Address spaces register the CPUs
    they are active on; invalidations fan out to those CPUs.
    """

    def __init__(self, num_cpus: int = 1,
                 counters: Optional[WorkCounters] = None):
        self.num_cpus = num_cpus
        self.counters = counters if counters is not None else WorkCounters()
        self._active: Dict[int, Set[int]] = {}

    def activate(self, asid: int, cpu: int) -> None:
        """Record that ``asid`` is (or was recently) active on ``cpu``.

        Mirrors a context switch onto the address space: its translations
        may now be cached there until the next flush.
        """
        self._active.setdefault(asid, set()).add(cpu)

    def deactivate(self, asid: int, cpu: int) -> None:
        """Record that ``cpu`` no longer caches ``asid`` translations."""
        cpus = self._active.get(asid)
        if cpus is not None:
            cpus.discard(cpu)
            if not cpus:
                del self._active[asid]

    def active_cpus(self, asid: int) -> Set[int]:
        """CPUs that may hold translations for ``asid``."""
        return set(self._active.get(asid, ()))

    def flush_local(self, asid: int, cpu: int = 0) -> None:
        """Flush one CPU's translations for ``asid``."""
        self.counters.tlb_flushes += 1
        self.deactivate(asid, cpu)

    def shootdown(self, asid: int, initiating_cpu: int = 0) -> int:
        """Invalidate ``asid`` translations machine-wide.

        The initiating CPU flushes locally; every *other* CPU with the
        address space active gets an IPI and flushes on receipt.  Returns
        the number of IPIs sent, which is what the cost model prices.
        """
        targets = self.active_cpus(asid)
        remote = targets - {initiating_cpu}
        self.counters.tlb_shootdowns += 1
        self.counters.ipis += len(remote)
        self.counters.tlb_flushes += len(targets) if targets else 1
        self._active.pop(asid, None)
        # The initiator still runs on this address space afterwards.
        self.activate(asid, initiating_cpu)
        return len(remote)

    def retire(self, asid: int) -> None:
        """Forget an address space entirely (process exit)."""
        self._active.pop(asid, None)
