"""Discrete-event model of VM-lock contention: why fork doesn't scale.

The paper's scalability argument: every fork, mmap, munmap and page fault
in a Linux process serialises on one per-address-space lock (``mmap_sem``),
so multithreaded address-space-heavy workloads stop scaling — and a
concurrently forking thread stalls the whole process.  The alternatives
(per-VMA locks, or processes built through a cross-process API that never
touches the parent's address space) keep operations independent.

This module simulates exactly that: ``num_threads`` workers, each
performing ``ops_per_thread`` operations of ``parallel_ns`` lock-free work
plus ``critical_ns`` inside one of ``num_locks`` locks (chosen round-robin
per thread), on ``num_cpus`` CPUs.  The event engine is a classic
future-event list; it reports the makespan and per-lock waiting time, and
its extremes are provable: with one lock the critical sections serialise,
with enough locks and CPUs the threads run independently — which is what
the F2 experiment's curves show.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

from ..errors import SimError


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of one contention simulation."""

    makespan_ns: float
    total_wait_ns: float
    total_ops: int
    num_threads: int

    @property
    def throughput_ops_per_sec(self) -> float:
        """Completed lock-protected operations per simulated second."""
        if self.makespan_ns == 0:
            return float("inf")
        return self.total_ops / (self.makespan_ns / 1e9)

    @property
    def mean_wait_ns(self) -> float:
        """Average time an operation spent queued on its lock."""
        return self.total_wait_ns / self.total_ops if self.total_ops else 0.0


@dataclass
class _Lock:
    free_at: float = 0.0
    wait_ns: float = 0.0


@dataclass
class _Cpu:
    free_at: float = 0.0


def simulate_contention(num_threads: int, ops_per_thread: int,
                        critical_ns: float, parallel_ns: float = 0.0,
                        num_locks: int = 1,
                        num_cpus: int = 0) -> ContentionResult:
    """Simulate lock-contended workers; returns the makespan and waits.

    Each worker alternates ``parallel_ns`` of independent work with a
    ``critical_ns`` critical section on lock ``thread_index %
    num_locks``.  ``num_cpus=0`` means one CPU per thread (contention on
    locks only).  Locks grant in arrival order; CPU time is modelled as
    the earliest-free CPU (work conserving).
    """
    if num_threads < 1 or ops_per_thread < 1:
        raise SimError("need at least one thread and one op")
    if critical_ns < 0 or parallel_ns < 0:
        raise SimError("negative durations")
    if num_locks < 1:
        raise SimError("need at least one lock")
    cpus = [_Cpu() for _ in range(num_cpus if num_cpus else num_threads)]
    locks = [_Lock() for _ in range(num_locks)]

    # Future-event list: (ready_time, sequence, thread_index, ops_done).
    events: List = []
    for t in range(num_threads):
        heapq.heappush(events, (0.0, t, t, 0))
    seq = num_threads
    makespan = 0.0
    total_ops = 0
    while events:
        ready, _, thread_index, done = heapq.heappop(events)
        # Claim the earliest-free CPU for this op's full service time.
        cpu = min(cpus, key=lambda c: c.free_at)
        start = max(ready, cpu.free_at)
        # Parallel phase runs immediately; the critical phase queues.
        after_parallel = start + parallel_ns
        lock = locks[thread_index % num_locks]
        crit_start = max(after_parallel, lock.free_at)
        lock.wait_ns += crit_start - after_parallel
        crit_end = crit_start + critical_ns
        lock.free_at = crit_end
        cpu.free_at = crit_end
        total_ops += 1
        makespan = max(makespan, crit_end)
        if done + 1 < ops_per_thread:
            heapq.heappush(events, (crit_end, seq, thread_index, done + 1))
            seq += 1
    return ContentionResult(
        makespan_ns=makespan,
        total_wait_ns=sum(lock.wait_ns for lock in locks),
        total_ops=total_ops,
        num_threads=num_threads,
    )


def fork_stall_ns(fork_walk_ns: float, num_threads: int,
                  fault_rate_per_sec: float, fault_ns: float) -> float:
    """Expected fault-service time stalled behind one fork's VM-lock hold.

    While fork walks the parent's page tables under the address-space
    lock (``fork_walk_ns``), every fault from the other ``num_threads-1``
    threads queues.  The expected stalled work is the arrival rate times
    the hold time times the per-fault cost — the quantity the paper's
    "fork stalls the whole process" remark describes.
    """
    if fork_walk_ns < 0 or fault_rate_per_sec < 0 or fault_ns < 0:
        raise SimError("negative parameters")
    if num_threads < 1:
        raise SimError("need at least one thread")
    arrivals = fault_rate_per_sec * (fork_walk_ns / 1e9) * (num_threads - 1)
    return arrivals * fault_ns
