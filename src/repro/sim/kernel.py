"""The simulated kernel: machine state, scheduler, syscall dispatch.

A :class:`Kernel` is one machine: physical memory, a TLB, a commit
policy, a VFS, a program registry, and a process table — all sharing one
:class:`~repro.sim.params.WorkCounters` record, so every page copied and
IPI sent anywhere on the machine is priced by one cost model into one
virtual clock (:attr:`Kernel.now_ns`).

Programs are generator functions ``def main(sys, *args)`` that ``yield``
requests built by the :class:`SyscallProxy` (``yield sys.fork(child)``,
``yield sys.read(fd, 100)``...).  The trampoline executes each request,
charges its work, and sends the result back in; blocking calls park the
thread on a predicate the scheduler polls.  Scheduling is deterministic:
each round steps every runnable thread once in (pid, tid) order, and a
round with zero runnable threads but blocked ones raises
:class:`~repro.errors.DeadlockError` — the detector that catches the
fork-with-threads deadlock of experiment T4.

Typical use::

    kernel = Kernel()
    kernel.register_program("/bin/true", lambda sys: iter(()))

    def main(sys):
        pid = yield sys.spawn("/bin/true")
        _, status = yield sys.waitpid(pid)
        yield sys.exit(status)

    kernel.register_program("/sbin/init", main)
    kernel.spawn_root("/sbin/init")
    kernel.run()
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import (DeadlockError, SimError, SimMemoryError, SimOSError,
                      SimSegfault)
from .addrspace import AddressSpace, AddressSpaceSnapshot
from .fdtable import FDTable
from .frames import FrameAllocator
from .fs import VFS
from .overcommit import CommitPolicy
from .params import KIB, MIB, SimConfig, WorkCounters
from .process import (BLOCKED, FINISHED, READY, Process, Thread, ZOMBIE)
from .signals import (SIG_DFL, SIGCHLD, SIGCONT, SIGKILL, SIGSEGV,
                      SIGSTOP, SignalState)
from .syscalls.base import EXEC_TRANSFER, EXITED, Park, RETRY
from .syscalls.emul import EmulationSyscalls
from .syscalls.files import FileSyscalls
from .syscalls.memory import MemorySyscalls
from .syscalls.procs import ProcessSyscalls
from .syscalls.sig import SignalSyscalls
from .syscalls.sync import SyncSyscalls
from .syscalls.xproc import CrossProcessSyscalls
from .tlb import TLBModel


class SyscallRequest:
    """One yielded syscall: a name plus arguments, executed by the kernel."""

    __slots__ = ("name", "args", "kwargs")

    def __init__(self, name: str, args: tuple, kwargs: dict):
        self.name = name
        self.args = args
        self.kwargs = kwargs

    def __repr__(self):
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"sys.{self.name}({', '.join(parts)})"


class SyscallProxy:
    """What programs see as ``sys``: attribute access builds requests.

    The proxy is stateless — it never touches the kernel — so one
    instance can be handed to every program.  Validation happens at
    dispatch: an unknown name raises ``ENOSYS`` inside the program.
    """

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)

        def build(*args, **kwargs) -> SyscallRequest:
            return SyscallRequest(name, args, kwargs)

        build.__name__ = name
        build.__qualname__ = f"sys.{name}"
        return build


@dataclass(frozen=True)
class ProgramImage:
    """A registered executable: entry point plus segment sizes.

    ``func`` is the generator function run as the program's main thread.
    Segment sizes shape the fresh address space exec/spawn builds — they
    are what makes a *big* program cost more to load than ``/bin/true``.
    """

    path: str
    func: Callable
    text_bytes: int = 512 * KIB
    data_bytes: int = 128 * KIB
    stack_bytes: int = 8 * MIB


#: Signals whose default action terminates the process.
_FATAL_DEFAULTS = frozenset({1, 2, 3, 9, 10, 11, 12, 13, 15})

#: Syscalls whose memory demand is a page *fault*, not an allocation
#: request: running out here is not the program's doing, so (outside
#: strict accounting) the OOM killer resolves it rather than ENOMEM.
_FAULTING_SYSCALLS = frozenset({"poke", "populate", "write", "dirty",
                                "xproc_write", "xproc_populate"})


def _iterate(iterable):
    """Adapt a plain iterable of syscall requests into a generator."""
    result = yield from iterable
    return result


class Kernel(ProcessSyscalls, FileSyscalls, MemorySyscalls, SignalSyscalls,
             SyncSyscalls, CrossProcessSyscalls, EmulationSyscalls):
    """One simulated machine.  See the module docstring for the model."""

    def __init__(self, config: Optional[SimConfig] = None, *,
                 strict_crashes: bool = True):
        self.config = config if config is not None else SimConfig()
        self.cost = self.config.cost_model
        self.counters = WorkCounters()
        self.rng = random.Random(self.config.rng_seed)
        self.allocator = FrameAllocator(self.config.total_frames,
                                        self.counters)
        self.tlb = TLBModel(self.config.num_cpus, self.counters)
        self.commit = CommitPolicy(self.config.total_frames,
                                   self.config.overcommit)
        self.vfs = VFS()
        self.vfs.makedirs("/bin")
        self.vfs.makedirs("/tmp")
        self.programs: Dict[str, ProgramImage] = {}
        self.processes: Dict[int, Process] = {}
        self.now_ns = 0.0
        self.strict_crashes = strict_crashes
        self._pids = itertools.count(1)
        self._proxy = SyscallProxy()
        self._as_refs: Dict[int, int] = {}
        self._as_objects: Dict[int, AddressSpace] = {}
        self._fdt_refs: Dict[int, int] = {}
        self._embryos: Dict[int, Process] = {}
        self._next_handle = 1
        #: Live address-space checkpoints by handle (sys_snapshot).
        self.snapshots: Dict[int, AddressSpaceSnapshot] = {}
        #: OOM-killer log: (victim_pid, rss_bytes_at_kill) tuples.
        self.oom_kills: List[tuple] = []
        self._fixed_ns = 0.0
        self._last_call_ns = 0.0
        self._last_thread_tid: Optional[int] = None

    # ------------------------------------------------------------------
    # Facilities the syscall mixins build on
    # ------------------------------------------------------------------

    def make_proxy(self) -> SyscallProxy:
        """The stateless ``sys`` object handed to programs."""
        return self._proxy

    def make_address_space(self, name: str) -> AddressSpace:
        """A fresh address space on this machine (fresh ASLR layout)."""
        return AddressSpace(self.config, allocator=self.allocator,
                            tlb=self.tlb, commit=self.commit,
                            counters=self.counters,
                            rng=random.Random(self.rng.getrandbits(64)),
                            name=name)

    def make_fdtable(self) -> FDTable:
        """An empty descriptor table wired to the machine counters."""
        return FDTable(self.counters)

    def new_pid(self) -> int:
        return next(self._pids)

    def find_process(self, pid: int) -> Optional[Process]:
        """The process with ``pid``, in any state, or ``None``."""
        return self.processes.get(pid)

    def adopt(self, child: Process, parent: Process) -> None:
        """Register a newly created process under its parent."""
        parent.children.append(child.pid)
        self.processes[child.pid] = child

    def attach_thread(self, process: Process, generator, name: str) -> Thread:
        """Add a runnable thread executing ``generator`` to a process.

        Plain iterables (``iter(())`` is a perfectly good /bin/true) are
        wrapped so the trampoline can drive everything through ``send``.
        """
        if not hasattr(generator, "send"):
            generator = _iterate(generator)
        thread = Thread(process, generator, name=name)
        process.threads.append(thread)
        return thread

    def charge_fixed(self, ns: float) -> None:
        """Add size-independent cost to the current syscall."""
        self._fixed_ns += ns

    def as_acquire(self, space: AddressSpace) -> None:
        """Take a reference on an address space (vfork/CLONE_VM share)."""
        self._as_refs[space.asid] = self._as_refs.get(space.asid, 0) + 1
        self._as_objects[space.asid] = space

    def as_release(self, space: AddressSpace) -> None:
        """Drop a reference; the last one destroys the space."""
        refs = self._as_refs.get(space.asid, 0)
        if refs <= 0:
            raise SimError(f"address space {space.asid} over-released")
        if refs == 1:
            del self._as_refs[space.asid]
            self._as_objects.pop(space.asid, None)
            space.destroy()
        else:
            self._as_refs[space.asid] = refs - 1

    def fdt_acquire(self, table: FDTable) -> None:
        """Take a reference on a descriptor table (CLONE_FILES shares)."""
        self._fdt_refs[id(table)] = self._fdt_refs.get(id(table), 0) + 1

    def fdt_release(self, table: FDTable) -> None:
        """Drop a reference; the last one closes every descriptor."""
        refs = self._fdt_refs.get(id(table), 0)
        if refs <= 0:
            raise SimError("descriptor table over-released")
        if refs == 1:
            del self._fdt_refs[id(table)]
            table.close_all()
        else:
            self._fdt_refs[id(table)] = refs - 1

    def lookup_program(self, path: str) -> ProgramImage:
        """The registered image at ``path`` (``ENOENT`` otherwise)."""
        image = self.programs.get(path)
        if image is None:
            raise SimOSError("ENOENT", f"no program registered at {path}")
        return image

    def build_image(self, space: AddressSpace, image: ProgramImage) -> None:
        """Lay out text/data/stack VMAs for a program image."""
        from .params import page_align_up
        page = space.page_size
        space.map(image.text_bytes, "rx", addr=space.text_base,
                  name=f"{image.path}:text")
        data_base = page_align_up(
            space.text_base + max(image.text_bytes, MIB), page)
        space.map(image.data_bytes, "rw", addr=data_base,
                  name=f"{image.path}:data")
        stack_len = page_align_up(image.stack_bytes, page)
        space.map(stack_len, "rw", addr=space.stack_top - stack_len,
                  name="[stack]")

    # ------------------------------------------------------------------
    # Program registry and boot
    # ------------------------------------------------------------------

    def register_program(self, path: str, func: Callable, *,
                         text_bytes: int = 512 * KIB,
                         data_bytes: int = 128 * KIB,
                         stack_bytes: int = 8 * MIB) -> ProgramImage:
        """Register an executable at ``path`` in the VFS.

        ``func(sys, *argv)`` must be a generator function (its body may
        also be empty: ``lambda sys: iter(())`` is a valid /bin/true).
        """
        image = ProgramImage(path, func, text_bytes, data_bytes, stack_bytes)
        self.programs[path] = image
        if not self.vfs.exists(path):
            parent = path.rsplit("/", 1)[0] or "/"
            self.vfs.makedirs(parent)
            self.vfs.create(path, b"#!sim\n" + path.encode())
        return image

    def spawn_root(self, path: str, argv=()) -> Process:
        """Create a top-level process (no parent) from a registered image."""
        image = self.lookup_program(path)
        proc = Process(self.new_pid(), 0, name=path.rsplit("/", 1)[-1])
        proc.addrspace = self.make_address_space(path)
        self.as_acquire(proc.addrspace)
        self.build_image(proc.addrspace, image)
        proc.fdtable = self.make_fdtable()
        self.fdt_acquire(proc.fdtable)
        proc.signals = SignalState()
        proc.argv = [path, *argv]
        self.processes[proc.pid] = proc
        self.attach_thread(proc, image.func(self._proxy, *argv), name="main")
        self.counters.exec_loads += 1
        return proc

    # ------------------------------------------------------------------
    # Snapshots: checkpointed address spaces as spawn sources
    # ------------------------------------------------------------------

    def take_snapshot(self, proc: Process, *,
                      name: Optional[str] = None) -> int:
        """Checkpoint ``proc``'s address space; returns a handle.

        The one-time write-protect sweep against the live space happens
        here (inside :meth:`AddressSpace.snapshot`); every later
        :meth:`spawn_from_snapshot` COW-shares the frozen image, whose
        size never changes again.
        """
        snapshot = proc.addrspace.snapshot(name=name)
        handle = self._next_handle
        self._next_handle += 1
        self.snapshots[handle] = snapshot
        return handle

    def lookup_snapshot(self, handle: int) -> AddressSpaceSnapshot:
        snapshot = self.snapshots.get(handle)
        if snapshot is None or snapshot.dead:
            raise SimOSError("EBADF", f"no such snapshot handle: {handle}")
        return snapshot

    def drop_snapshot(self, handle: int) -> None:
        """Release a snapshot's frames (children keep their COW shares)."""
        snapshot = self.snapshots.pop(handle, None)
        if snapshot is None:
            raise SimOSError("EBADF", f"no such snapshot handle: {handle}")
        snapshot.destroy()

    def spawn_from_snapshot(self, snapshot: AddressSpaceSnapshot,
                            child_main, *args, parent: Process,
                            name: Optional[str] = None) -> Process:
        """Materialise a child process from a frozen checkpoint.

        The child's memory is a COW share of the snapshot — the *live*
        parent's address space is never walked, so (like spawn, unlike
        fork) the cost does not grow with the parent.  Descriptors are
        inherited from the calling parent, signals start fresh, and the
        child runs ``child_main(sys, *args)`` as its continuation.
        """
        child_name = name if name is not None else f"{snapshot.name}+restore"
        child_as = self.make_address_space(child_name)
        try:
            snapshot.restore_into(child_as)
        except Exception:
            child_as.destroy()
            raise
        child = Process(self.new_pid(), parent.pid, name=child_name)
        child.addrspace = child_as
        self.as_acquire(child_as)
        child.fdtable = parent.fdtable.clone_for_fork()
        self.fdt_acquire(child.fdtable)
        child.signals = SignalState()
        child.argv = list(parent.argv)
        child.cwd = parent.cwd
        child.origin = "snapshot"
        self.adopt(child, parent)
        self.attach_thread(child, child_main(self._proxy, *args),
                           name="main")
        return child

    # ------------------------------------------------------------------
    # Process teardown
    # ------------------------------------------------------------------

    def exit_process(self, proc: Process, status: int) -> None:
        """Terminate ``proc``: free resources, zombify, signal the parent."""
        if not proc.alive:
            return
        self.charge_fixed(self.cost.fixed_exit_ns)
        proc.state = ZOMBIE
        proc.exit_status = status
        for thread in proc.threads:
            if thread.state != FINISHED:
                thread.finish()
        self.fdt_release(proc.fdtable)
        proc.shares_parent_as = False  # releases a blocked vfork parent
        self.as_release(proc.addrspace)
        proc.mutexes = {}
        for child_pid in proc.children:
            child = self.processes.get(child_pid)
            if child is not None:
                child.ppid = 1
        parent = self.processes.get(proc.ppid)
        if parent is not None and parent.alive:
            parent.signals.post(SIGCHLD)

    # ------------------------------------------------------------------
    # The trampoline and scheduler
    # ------------------------------------------------------------------

    def _deliver_signals(self, proc: Process) -> bool:
        """Act on pending signals; returns True if the process died.

        SIGSTOP freezes the whole process (job control); the matching
        SIGCONT is serviced by :meth:`_service_stopped`, because a
        stopped process never reaches this per-step delivery point.
        """
        while proc.alive:
            signum = proc.signals.deliverable()
            if signum is None:
                return False
            handler = proc.signals.get_handler(signum)
            proc.signals.take(signum)
            if signum == SIGSTOP:  # uncatchable freeze
                proc.stopped = True
                return False
            if callable(handler):
                handler(signum)
                continue
            if handler == SIG_DFL and signum in _FATAL_DEFAULTS:
                self.exit_process(proc, 128 + signum)
                return True
            # Remaining defaults (SIGCHLD/SIGCONT reach here only if
            # re-posted while also pending): ignore.
        return True

    def _service_stopped(self) -> None:
        """Handle the signals a stopped process can still receive.

        SIGCONT resumes it; SIGKILL kills it; everything else stays
        pending until the process runs again, per POSIX.
        """
        for proc in self.processes.values():
            if not proc.alive or not proc.stopped:
                continue
            if SIGKILL in proc.signals.pending:
                proc.signals.take(SIGKILL)
                self.exit_process(proc, 128 + SIGKILL)
                continue
            if SIGCONT in proc.signals.pending:
                proc.signals.take(SIGCONT)
                proc.stopped = False

    def oom_kill(self) -> Optional[Process]:
        """Pick and kill the largest live process (the OOM killer).

        Badness is resident size, Linux-style.  Returns the victim, or
        ``None`` when nothing live holds memory.  The kill is logged on
        :attr:`oom_kills` and the victim dies with status 137
        (128+SIGKILL), exactly what dmesg-reading operators expect.
        """
        candidates = [p for p in self.processes.values()
                      if p.alive and p.addrspace is not None
                      and not p.addrspace.dead]
        candidates = [p for p in candidates
                      if p.addrspace.resident_bytes() > 0]
        if not candidates:
            return None
        victim = max(candidates,
                     key=lambda p: (p.addrspace.resident_bytes(), p.pid))
        rss = victim.addrspace.resident_bytes()
        self.oom_kills.append((victim.pid, rss))
        self.exit_process(victim, 137)
        return victim

    def _execute(self, thread: Thread, request) -> None:
        if not isinstance(request, SyscallRequest):
            thread.throw_value = SimError(
                f"program yielded {request!r}, not a syscall request")
            return
        handler = getattr(self, f"sys_{request.name}", None)
        if handler is None:
            thread.throw_value = SimOSError("ENOSYS", request.name)
            return
        before = self.counters.snapshot()
        self.counters.syscalls += 1
        self._fixed_ns = 0.0
        try:
            result = handler(thread, *request.args, **request.kwargs)
        except Park as park:
            if park.result is RETRY:
                thread.park(park.predicate, request, park.reason)
            else:
                thread.park(park.predicate, None, park.reason)
                thread.wake_result = park.result
        except SimSegfault:
            thread.process.signals.post(SIGSEGV)
        except SimMemoryError as err:
            self._handle_memory_pressure(thread, request, err)
        except SimOSError as err:
            thread.throw_value = err
        else:
            if result is EXEC_TRANSFER or result is EXITED:
                pass
            else:
                thread.send_value = result
        self.now_ns += (self.cost.work_ns(self.counters.delta(before))
                        + self._fixed_ns)

    def _handle_memory_pressure(self, thread: Thread, request,
                                err: SimMemoryError) -> None:
        """Decide between ENOMEM and the OOM killer.

        Allocation-time failures (mmap, fork's commit charge) return
        ENOMEM to the caller; *fault-time* failures under a policy that
        overcommits are the kernel's promise coming due, so the OOM
        killer frees memory and the faulting call retries — unless the
        faulter itself was the chosen victim (or nothing could be
        freed), in which case it dies.
        """
        if (request.name not in _FAULTING_SYSCALLS
                or self.config.overcommit == "never"):
            thread.throw_value = err
            return
        victim = self.oom_kill()
        if victim is None or victim is thread.process:
            if thread.process.alive:
                self.exit_process(thread.process, 137)
            return
        # Memory was freed: retry the faulting call on the next step.
        thread.pending_call = request

    def _step(self, thread: Thread) -> None:
        proc = thread.process
        if not proc.alive or thread.state != READY:
            return
        if self._deliver_signals(proc):
            return
        if self._last_thread_tid not in (None, thread.tid):
            self.counters.context_switches += 1
            self.now_ns += self.cost.context_switch_ns
        self._last_thread_tid = thread.tid
        if thread.pending_call is not None:
            request = thread.pending_call
            thread.pending_call = None
            self._execute(thread, request)
            return
        thread.state = READY
        try:
            if thread.throw_value is not None:
                exc = thread.throw_value
                thread.throw_value = None
                request = thread.generator.throw(exc)
            else:
                value = thread.send_value
                thread.send_value = None
                request = thread.generator.send(value)
        except StopIteration as stop:
            thread.finish()
            if proc.alive and not proc.live_threads():
                status = stop.value if isinstance(stop.value, int) else 0
                self.exit_process(proc, status)
            return
        except SimOSError as err:
            # An OS error the program chose not to catch: crash.
            self._crash(proc, thread, err)
            return
        except (SimError, DeadlockError):
            raise
        except Exception as exc:  # a bug in the simulated program
            self._crash(proc, thread, exc)
            return
        self._execute(thread, request)

    def _crash(self, proc: Process, thread: Thread, exc: Exception) -> None:
        thread.finish()
        if self.strict_crashes:
            raise SimError(
                f"program crash in pid {proc.pid} ({proc.name}): "
                f"{type(exc).__name__}: {exc}") from exc
        self.exit_process(proc, 134)

    def _wake_blocked(self) -> None:
        for proc in self.processes.values():
            if not proc.alive:
                continue
            for thread in proc.threads:
                if thread.state == BLOCKED and thread.wake_predicate():
                    thread.wake()

    def _reap_orphans(self) -> None:
        for proc in list(self.processes.values()):
            if proc.state != ZOMBIE:
                continue
            parent = self.processes.get(proc.ppid)
            if parent is None or not parent.alive:
                proc.state = "reaped"

    def runnable_threads(self) -> List[Thread]:
        """Ready threads in deterministic (pid, tid) order.

        Threads of a stopped (SIGSTOPped) process keep their states but
        are never scheduled.
        """
        threads = []
        for pid in sorted(self.processes):
            proc = self.processes[pid]
            if not proc.alive or proc.stopped:
                continue
            threads.extend(t for t in proc.threads if t.state == READY)
        return threads

    def blocked_threads(self) -> List[Thread]:
        """Blocked threads in live processes."""
        return [t for p in self.processes.values() if p.alive
                for t in p.threads if t.state == BLOCKED]

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run the machine until every process finishes.

        Returns the number of scheduler steps taken.  Raises
        :class:`DeadlockError` when threads are blocked and nothing can
        ever wake them, and :class:`SimError` past ``max_steps`` (a
        runaway-program backstop).
        """
        steps = 0
        while True:
            self._wake_blocked()
            self._service_stopped()
            self._reap_orphans()
            runnable = self.runnable_threads()
            if not runnable:
                blocked = self.blocked_threads()
                frozen = [p for p in self.processes.values()
                          if p.alive and p.stopped and p.live_threads()]
                if blocked or frozen:
                    report = "; ".join(
                        [f"pid {t.process.pid}/{t.name}: {t.block_reason}"
                         for t in blocked]
                        + [f"pid {p.pid}: stopped with no one to SIGCONT it"
                           for p in frozen])
                    raise DeadlockError(
                        f"{len(blocked) + len(frozen)} thread(s)/process(es) "
                        f"stuck forever: {report}")
                return steps
            for thread in runnable:
                steps += 1
                if steps > max_steps:
                    raise SimError(f"exceeded {max_steps} scheduler steps")
                self._step(thread)

    def ps(self) -> List[dict]:
        """A ``ps``-style snapshot of the process table.

        One row per process (any state), with the fields monitoring and
        tests care about.  Ordered by pid.
        """
        rows = []
        for pid in sorted(self.processes):
            proc = self.processes[pid]
            space = proc.addrspace
            rows.append({
                "pid": proc.pid,
                "ppid": proc.ppid,
                "name": proc.name,
                "state": proc.state,
                "threads": len(proc.live_threads()),
                "rss_bytes": (space.resident_bytes()
                              if space is not None and not space.dead
                              else 0),
                "vsz_bytes": (space.virtual_bytes()
                              if space is not None and not space.dead
                              else 0),
                "fds": len(proc.fdtable) if proc.fdtable is not None else 0,
            })
        return rows

    def timed_call(self, thread: Thread, name: str, *args, **kwargs):
        """Execute one syscall directly and price it: ``(result, ns)``.

        The measurement entry point for benchmark drivers: no scheduler,
        no program generators — just the handler, its counted work, and
        the cost model.  The virtual clock advances as it would under
        the trampoline.  Blocking handlers raise their
        :class:`~repro.sim.syscalls.base.Park`; drivers that call e.g.
        ``vfork`` must catch it (the work has been performed and priced
        by the time it raises).
        """
        handler = getattr(self, f"sys_{name}", None)
        if handler is None:
            raise SimOSError("ENOSYS", name)
        before = self.counters.snapshot()
        self.counters.syscalls += 1
        self._fixed_ns = 0.0
        try:
            result = handler(thread, *args, **kwargs)
        finally:
            elapsed = (self.cost.work_ns(self.counters.delta(before))
                       + self._fixed_ns)
            self.now_ns += elapsed
            self._last_call_ns = elapsed
        return result, elapsed

    def run_program(self, path: str, argv=(), *,
                    max_steps: int = 1_000_000) -> int:
        """Boot ``path`` as the root process, run to completion.

        Returns the root process's exit status — the one-call way to run
        a self-contained scenario.
        """
        proc = self.spawn_root(path, argv)
        self.run(max_steps=max_steps)
        return proc.exit_status
