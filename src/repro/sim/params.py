"""Simulator configuration and the cost model.

The simulated kernel never reads a wall clock.  Every operation *counts
work* — pages copied, PTEs written, faults taken, IPIs sent — in a
:class:`WorkCounters` record, and :class:`CostModel` converts counted work
into virtual nanoseconds.  Keeping the conversion in data rather than in
code is what makes the ablation experiments (A1 in DESIGN.md) parameter
sweeps instead of code forks: zeroing one constant removes exactly one
mechanism's cost.

Default constants are calibrated so the simulated Figure 1 matches the
shape and rough magnitudes of the real-OS run on commodity x86 hardware
(see EXPERIMENTS.md): a fork of a dirty multi-gigabyte address space costs
hundreds of milliseconds, while ``posix_spawn`` stays at a fraction of a
millisecond regardless of parent size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

PAGE_SIZE = 4096
HUGE_PAGE_SIZE = 2 * 1024 * 1024

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass
class WorkCounters:
    """Mechanical work performed by the simulated kernel.

    Counters are cumulative; take a :meth:`snapshot` before an operation
    and subtract with :meth:`delta` to attribute work to it.
    """

    pages_copied: int = 0          # full page copies (COW break, eager fork)
    ptes_copied: int = 0           # PTEs duplicated into a child page table
    ptes_writeprotected: int = 0   # parent PTEs downgraded to read-only at fork
    pte_writes: int = 0            # other PTE installs/updates (mmap, fault)
    faults: int = 0                # page faults taken (demand zero + COW)
    cow_breaks: int = 0            # COW faults that had to copy
    cow_reuses: int = 0            # COW faults resolved by reusing a sole frame
    zero_fills: int = 0            # demand-zero page materialisations
    tlb_shootdowns: int = 0        # remote-TLB invalidation rounds
    ipis: int = 0                  # inter-processor interrupts sent
    tlb_flushes: int = 0           # local TLB flushes (incl. context switch)
    frames_allocated: int = 0
    frames_freed: int = 0
    syscalls: int = 0
    context_switches: int = 0
    vm_lock_acquisitions: int = 0
    exec_loads: int = 0            # program images loaded by exec/spawn
    fd_dups: int = 0               # fd table entries duplicated at fork

    def snapshot(self) -> "WorkCounters":
        """Return an independent copy of the current counts."""
        return replace(self)

    def delta(self, since: "WorkCounters") -> "WorkCounters":
        """Return the work performed since ``since`` was snapshotted."""
        out = WorkCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) - getattr(since, f.name))
        return out

    def add(self, other: "WorkCounters") -> None:
        """Accumulate ``other`` into this record in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        """Counters as a plain ``{name: count}`` dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class CostModel:
    """Nanosecond cost of each unit of kernel work.

    The defaults approximate a ~3 GHz x86 server: a 4 KiB page copy is a
    few hundred nanoseconds of streaming memcpy, a PTE write tens of
    nanoseconds once the cache line is hot, an IPI round a few
    microseconds, and loading a small static program image a few hundred
    microseconds.  ``fixed_*`` constants capture the size-independent
    syscall path (entry/exit, accounting, scheduler insertion).
    """

    page_copy_ns: float = 250.0
    pte_copy_ns: float = 12.0
    pte_writeprotect_ns: float = 10.0
    pte_write_ns: float = 15.0
    fault_ns: float = 900.0
    zero_fill_ns: float = 300.0
    tlb_shootdown_ns: float = 4000.0
    ipi_ns: float = 2000.0
    tlb_flush_ns: float = 500.0
    frame_alloc_ns: float = 40.0
    frame_free_ns: float = 30.0
    syscall_ns: float = 300.0
    context_switch_ns: float = 1200.0
    vm_lock_ns: float = 50.0
    exec_load_ns: float = 250_000.0
    fd_dup_ns: float = 60.0

    fixed_fork_ns: float = 45_000.0
    fixed_spawn_ns: float = 60_000.0
    fixed_exec_ns: float = 50_000.0
    fixed_exit_ns: float = 20_000.0

    #: Counters that classify other counted work rather than adding to it:
    #: a COW break is already priced as one fault plus one page copy, and
    #: a COW reuse as one fault.  Pricing these would double-charge.
    CLASSIFICATION_COUNTERS = frozenset({"cow_breaks", "cow_reuses"})

    _COUNTER_COSTS = (
        ("pages_copied", "page_copy_ns"),
        ("ptes_copied", "pte_copy_ns"),
        ("ptes_writeprotected", "pte_writeprotect_ns"),
        ("pte_writes", "pte_write_ns"),
        ("faults", "fault_ns"),
        ("zero_fills", "zero_fill_ns"),
        ("tlb_shootdowns", "tlb_shootdown_ns"),
        ("ipis", "ipi_ns"),
        ("tlb_flushes", "tlb_flush_ns"),
        ("frames_allocated", "frame_alloc_ns"),
        ("frames_freed", "frame_free_ns"),
        ("syscalls", "syscall_ns"),
        ("context_switches", "context_switch_ns"),
        ("vm_lock_acquisitions", "vm_lock_ns"),
        ("exec_loads", "exec_load_ns"),
        ("fd_dups", "fd_dup_ns"),
    )

    def work_ns(self, work: WorkCounters) -> float:
        """Virtual nanoseconds implied by a work record (no fixed costs)."""
        total = 0.0
        for counter_name, cost_name in self._COUNTER_COSTS:
            count = getattr(work, counter_name)
            if count:
                total += count * getattr(self, cost_name)
        return total

    def without(self, **zeroed: bool) -> "CostModel":
        """Return a copy with the named cost constants set to zero.

        Used by the A1 ablation: ``model.without(page_copy_ns=True)``
        prices page copies at nothing, isolating the remaining terms.
        """
        updates = {name: 0.0 for name, flag in zeroed.items() if flag}
        for name in updates:
            if name not in {f.name for f in fields(self)}:
                raise ValueError(f"unknown cost constant: {name}")
        return replace(self, **updates)


@dataclass(frozen=True)
class SimConfig:
    """Tunable parameters of a simulated machine.

    Attributes:
        total_ram: bytes of simulated physical memory.
        page_size: base page size; 4 KiB unless huge pages are modelled.
        num_cpus: CPUs, which bounds TLB-shootdown fan-out and the
            scaling experiment's parallelism.
        overcommit: ``"heuristic"`` (Linux default: refuse only wildly
            unreasonable requests), ``"always"``, or ``"never"`` (strict
            commit accounting, the mode under which fork of a large
            process fails — experiment T3).
        aslr_entropy_bits: bits of randomness in fresh mmap placements.
        cow_enabled: when ``False`` fork copies every page eagerly
            (pre-BSD behaviour; A1 ablation point).
        vm_lock_granularity: ``"addrspace"`` (one lock per mm, the Linux
            ``mmap_sem`` that the paper blames for fork's scaling
            collapse) or ``"vma"`` (per-region locks, the fix the
            scaling experiment F2 contrasts).
    """

    total_ram: int = 4 * GIB
    page_size: int = PAGE_SIZE
    num_cpus: int = 4
    overcommit: str = "heuristic"
    aslr_entropy_bits: int = 28
    cow_enabled: bool = True
    vm_lock_granularity: str = "addrspace"
    rng_seed: int = 20190513  # HotOS'19 workshop date
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self):
        if self.overcommit not in ("heuristic", "always", "never"):
            raise ValueError(f"bad overcommit mode: {self.overcommit!r}")
        if self.vm_lock_granularity not in ("addrspace", "vma"):
            raise ValueError(
                f"bad vm_lock_granularity: {self.vm_lock_granularity!r}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.total_ram < self.page_size:
            raise ValueError("total_ram smaller than one page")
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")

    @property
    def total_frames(self) -> int:
        """Number of physical frames implied by RAM and page size."""
        return self.total_ram // self.page_size


def pages_for(nbytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of pages needed to cover ``nbytes`` (ceiling division)."""
    if nbytes < 0:
        raise ValueError("negative size")
    return -(-nbytes // page_size)


def page_align_down(addr: int, page_size: int = PAGE_SIZE) -> int:
    """Round ``addr`` down to a page boundary."""
    return addr & ~(page_size - 1)


def page_align_up(addr: int, page_size: int = PAGE_SIZE) -> int:
    """Round ``addr`` up to a page boundary."""
    return (addr + page_size - 1) & ~(page_size - 1)
