"""Physical memory: frames, aggregate frames, and the frame allocator.

Two representations coexist, for the same reason real performance
simulators mix them:

* :class:`Frame` — one physical page with a refcount and a page-granular
  content token.  Used for pages a simulated program actually touches, so
  copy-on-write correctness is observable (a child's write must not be
  visible through the parent's mapping).

* :class:`AggregateFrame` — a *run* of ``count`` identical anonymous pages
  behind a single Python object.  Used when a benchmark dirties gigabytes
  of ballast: the kernel charges the same work (``count`` page copies,
  ``count`` PTE writes, ...) without materialising millions of objects.
  A COW fault on one page of an aggregate *splits* it: the faulted page
  becomes a private :class:`Frame` and the aggregate shrinks by one.

The allocator accounts both kinds against the same physical-frame budget,
so out-of-memory behaviour (and the overcommit experiment T3) sees the
true total.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import SimError, SimMemoryError
from .params import WorkCounters


class Frame:
    """One physical page frame.

    Attributes:
        value: the page's content token.  The simulator models content at
            page granularity: any hashable value a program stores via
            ``AddressSpace.write``.  ``None`` means zero-filled.
        refcount: number of PTEs mapping this frame.  COW sharing after
            fork shows up as ``refcount > 1``.
    """

    __slots__ = ("index", "value", "refcount")
    _ids = itertools.count()

    def __init__(self, value=None):
        self.index = next(self._ids)
        self.value = value
        self.refcount = 1

    def __repr__(self):
        return f"<Frame #{self.index} rc={self.refcount} value={self.value!r}>"


class AggregateFrame:
    """A run of ``count`` uniform anonymous frames behind one object.

    All pages in the run share one content token and one refcount (the
    number of address spaces mapping the run).  Splitting one page out —
    because a program wrote to it individually, or a COW fault copied it —
    decrements ``count``, never ``refcount``.
    """

    __slots__ = ("index", "count", "value", "refcount")
    _ids = itertools.count()

    def __init__(self, count: int, value=None):
        if count <= 0:
            raise SimError("aggregate frame needs a positive page count")
        self.index = next(self._ids)
        self.count = count
        self.value = value
        self.refcount = 1

    def __repr__(self):
        return (f"<AggregateFrame #{self.index} pages={self.count} "
                f"rc={self.refcount}>")


class FrameAllocator:
    """Allocates frames against a fixed physical budget.

    Every allocation and free is charged to a :class:`WorkCounters`
    record.  The allocator does not keep a free list — frames are
    synthetic objects — it only enforces the budget and tracks usage, which
    is all the experiments need.
    """

    def __init__(self, total_frames: int, counters: Optional[WorkCounters] = None):
        if total_frames <= 0:
            raise SimError("need a positive frame budget")
        self.total_frames = total_frames
        self.used_frames = 0
        self.counters = counters if counters is not None else WorkCounters()
        self.peak_used = 0

    @property
    def free_frames(self) -> int:
        """Frames still available."""
        return self.total_frames - self.used_frames

    def _charge(self, n: int) -> None:
        if n > self.free_frames:
            raise SimMemoryError(
                f"need {n} frames, only {self.free_frames} of "
                f"{self.total_frames} free")
        self.used_frames += n
        self.peak_used = max(self.peak_used, self.used_frames)
        self.counters.frames_allocated += n

    def _release(self, n: int) -> None:
        if n > self.used_frames:
            raise SimError("double free: releasing more frames than used")
        self.used_frames -= n
        self.counters.frames_freed += n

    def alloc(self, value=None) -> Frame:
        """Allocate one frame holding ``value`` (``None`` = zero page)."""
        self._charge(1)
        return Frame(value)

    def alloc_aggregate(self, count: int, value=None) -> AggregateFrame:
        """Allocate a uniform run of ``count`` frames as one aggregate."""
        agg = AggregateFrame(count, value)  # validates count first
        self._charge(count)
        return agg

    def incref(self, frame) -> None:
        """Add a mapping reference to a frame or aggregate."""
        frame.refcount += 1

    def decref(self, frame) -> None:
        """Drop a mapping reference; frees the memory at zero."""
        if frame.refcount <= 0:
            raise SimError(f"refcount underflow on {frame!r}")
        frame.refcount -= 1
        if frame.refcount == 0:
            if isinstance(frame, AggregateFrame):
                self._release(frame.count)
                frame.count = 0
            else:
                self._release(1)

    def split_aggregate(self, agg: AggregateFrame, pages: int) -> AggregateFrame:
        """Move ``pages`` out of a sole-owned run into a new aggregate.

        Budget-neutral: the pages change owner, not state.  Used when a
        VMA split divides a bulk run in two, so each half can later be
        released independently and exactly.
        """
        if agg.refcount != 1:
            raise SimError("splitting a shared aggregate")
        if pages <= 0 or pages >= agg.count:
            raise SimError(
                f"cannot split {pages} pages out of a {agg.count}-page run")
        agg.count -= pages
        return AggregateFrame(pages, agg.value)

    def release_from_aggregate(self, agg: AggregateFrame, pages: int) -> None:
        """Return ``pages`` of a *sole-owned* run to the free budget.

        Used when an address space unmaps part of a bulk-populated range
        it does not share with anyone.  Shared runs are never shrunk —
        their pages are released wholesale when the last reference drops.
        """
        if agg.refcount != 1:
            raise SimError("shrinking a shared aggregate")
        if pages < 0 or pages > agg.count:
            raise SimError(
                f"releasing {pages} pages from a {agg.count}-page run")
        agg.count -= pages
        self._release(pages)

    def split_from_aggregate(self, agg: AggregateFrame) -> Frame:
        """Carve one private page out of an aggregate run.

        The new :class:`Frame` inherits the aggregate's content token.
        Two cases:

        * Sole owner (``refcount == 1``): the page literally leaves the
          run — ``count`` shrinks and net physical usage is unchanged.
        * Shared run (``refcount > 1``): this is a COW break.  The run
          stays whole because the other sharers still map the original
          page; the caller gets a net-new physical page.  (If every
          sharer eventually breaks the same page the original stays
          charged to the run until the run's refcount reaches zero — a
          deliberate, documented approximation of per-page refcounts in
          the bulk path.)
        """
        if agg.count <= 0:
            raise SimError("splitting an empty aggregate")
        if agg.refcount == 1:
            agg.count -= 1
            self._release(1)
        return self.alloc(agg.value)
