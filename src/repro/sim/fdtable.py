"""Per-process file-descriptor tables.

The descriptor table is where three of the paper's arguments become
concrete:

* **fork is insecure by default** — the child inherits *every* open
  descriptor unless each was opened ``O_CLOEXEC`` (and close-on-exec only
  helps at exec time, not between fork and exec);
* **fork doesn't compose** — descriptor leaks across an innocent
  library's fork are invisible to the caller;
* **the OFD sharing rule** — fork duplicates descriptor *entries* but
  shares the open file descriptions behind them, offsets included.

:meth:`FDTable.clone_for_fork` implements exactly the POSIX behaviour and
charges one ``fd_dup`` of work per entry, so descriptor-heavy parents
make fork measurably more expensive, as they do in real kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimOSError
from .fs import OpenFileDescription
from .params import WorkCounters


class FDEntry:
    """One slot in a descriptor table: an OFD reference plus flags."""

    __slots__ = ("ofd", "cloexec")

    def __init__(self, ofd: OpenFileDescription, cloexec: bool = False):
        self.ofd = ofd
        self.cloexec = cloexec


class FDTable:
    """A process's descriptor table.

    Owns one OFD reference per entry; closing the table's entry drops the
    reference.  Descriptor numbers allocate lowest-first, as POSIX
    requires (programs rely on it for the stdin/stdout/stderr triple).
    """

    def __init__(self, counters: Optional[WorkCounters] = None):
        self._entries: Dict[int, FDEntry] = {}
        self.counters = counters if counters is not None else WorkCounters()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fd: int) -> bool:
        return fd in self._entries

    def fds(self) -> List[int]:
        """Open descriptor numbers, ascending."""
        return sorted(self._entries)

    def _lowest_free(self, floor: int = 0) -> int:
        fd = floor
        while fd in self._entries:
            fd += 1
        return fd

    def lookup(self, fd: int) -> FDEntry:
        """The entry for ``fd`` or ``EBADF``."""
        entry = self._entries.get(fd)
        if entry is None:
            raise SimOSError("EBADF", f"fd {fd} is not open")
        return entry

    def ofd(self, fd: int) -> OpenFileDescription:
        """The open file description behind ``fd``."""
        return self.lookup(fd).ofd

    def install(self, ofd: OpenFileDescription, *, cloexec: bool = False,
                at: Optional[int] = None) -> int:
        """Adopt one OFD reference into the table; returns the fd.

        The caller transfers its reference (open/pipe hand freshly minted
        OFDs straight here).  ``at`` forces a slot, closing any previous
        occupant — ``dup2`` semantics.
        """
        if at is None:
            fd = self._lowest_free()
        else:
            if at < 0:
                raise SimOSError("EBADF", f"negative fd {at}")
            if at in self._entries:
                self.close(at)
            fd = at
        self._entries[fd] = FDEntry(ofd, cloexec)
        return fd

    def dup(self, fd: int, *, floor: int = 0, cloexec: bool = False) -> int:
        """``dup``/``F_DUPFD``: new descriptor, same OFD (offset shared)."""
        entry = self.lookup(fd)
        entry.ofd.incref()
        new_fd = self._lowest_free(floor)
        self._entries[new_fd] = FDEntry(entry.ofd, cloexec)
        return new_fd

    def dup2(self, old_fd: int, new_fd: int) -> int:
        """``dup2``: alias ``old_fd`` at ``new_fd``, closing what was there."""
        entry = self.lookup(old_fd)
        if old_fd == new_fd:
            return new_fd
        entry.ofd.incref()
        if new_fd in self._entries:
            self.close(new_fd)
        # dup2 clears close-on-exec on the new descriptor (POSIX).
        self._entries[new_fd] = FDEntry(entry.ofd, cloexec=False)
        return new_fd

    def set_cloexec(self, fd: int, value: bool = True) -> None:
        """Set or clear the close-on-exec flag (``FD_CLOEXEC``)."""
        self.lookup(fd).cloexec = value

    def get_cloexec(self, fd: int) -> bool:
        """The close-on-exec flag for ``fd``."""
        return self.lookup(fd).cloexec

    def close(self, fd: int) -> None:
        """Close one descriptor, dropping its OFD reference."""
        entry = self._entries.pop(fd, None)
        if entry is None:
            raise SimOSError("EBADF", f"fd {fd} is not open")
        entry.ofd.decref()

    def close_all(self) -> None:
        """Close every descriptor (process exit)."""
        for fd in list(self._entries):
            self.close(fd)

    def clone_for_fork(self) -> "FDTable":
        """Duplicate the table for a forked child (POSIX fork rules).

        Every entry — *including* close-on-exec ones — is copied; the
        OFDs behind them are shared, not copied, so offsets remain
        coupled between parent and child.
        """
        child = FDTable(self.counters)
        for fd, entry in self._entries.items():
            entry.ofd.incref()
            child._entries[fd] = FDEntry(entry.ofd, entry.cloexec)
            self.counters.fd_dups += 1
        return child

    def apply_exec(self) -> None:
        """Apply exec semantics: close every close-on-exec descriptor."""
        for fd in [fd for fd, e in self._entries.items() if e.cloexec]:
            self.close(fd)
