"""Memory commit accounting: the overcommit policy.

The paper argues fork *forces* overcommit: forking a process that uses
more than half of RAM is only possible if the kernel promises memory it
cannot back — because an exec usually follows and discards the copy, the
promise usually works out, and the OOM killer cleans up when it doesn't.

:class:`CommitPolicy` implements the three Linux modes:

* ``always`` — never refuse; the OOM killer is the backstop.
* ``heuristic`` — refuse only single requests that exceed physical
  memory (Linux's default ``overcommit_memory=0`` approximation).
* ``never`` — strict accounting: the sum of all private-writable
  commitments must fit in RAM (plus an optional ratio), so a large
  process cannot fork (experiment T3).
"""

from __future__ import annotations

from ..errors import SimError, SimMemoryError


class CommitPolicy:
    """Tracks committed pages and arbitrates new commitments.

    One instance per simulated machine.  Address spaces charge pages for
    private-writable mappings at ``mmap``/``fork`` time and uncharge on
    unmap/exit; whether a charge can fail depends on the mode.
    """

    def __init__(self, total_pages: int, mode: str = "heuristic",
                 ratio: float = 1.0):
        if mode not in ("always", "heuristic", "never"):
            raise SimError(f"bad overcommit mode {mode!r}")
        if total_pages <= 0:
            raise SimError("need a positive page budget")
        self.total_pages = total_pages
        self.mode = mode
        self.ratio = ratio
        self.committed_pages = 0
        self.peak_committed = 0
        self.refusals = 0

    @property
    def limit_pages(self) -> int:
        """Commit limit in strict mode."""
        return int(self.total_pages * self.ratio)

    def would_admit(self, pages: int) -> bool:
        """Whether a charge of ``pages`` would succeed right now."""
        if pages < 0:
            raise SimError("negative commit charge")
        if self.mode == "always":
            return True
        if self.mode == "heuristic":
            return pages <= self.total_pages
        return self.committed_pages + pages <= self.limit_pages

    def charge(self, pages: int) -> None:
        """Commit ``pages``; raises :class:`SimMemoryError` on refusal."""
        if not self.would_admit(pages):
            self.refusals += 1
            raise SimMemoryError(
                f"commit of {pages} pages refused "
                f"({self.committed_pages}/{self.limit_pages} committed, "
                f"mode={self.mode})")
        self.committed_pages += pages
        self.peak_committed = max(self.peak_committed, self.committed_pages)

    def uncharge(self, pages: int) -> None:
        """Release previously committed pages."""
        if pages < 0:
            raise SimError("negative commit uncharge")
        if pages > self.committed_pages:
            raise SimError("commit accounting underflow")
        self.committed_pages -= pages
