"""Processes and threads: the kernel's unit of execution.

A simulated program is a Python *generator function*: it receives a
syscall proxy and ``yield``s syscall requests; the kernel trampoline
executes each request and sends the result back in.  A
:class:`Thread` owns one such generator; a :class:`Process` owns one
address space, one descriptor table, one signal state, a mutex table and
one or more threads — exactly the ownership boundaries whose duplication
(or non-duplication) the fork-vs-spawn argument is about.

One honest limitation, stated up front: Python generators cannot be
cloned, so the simulator's ``fork`` takes the child's continuation as an
explicit function instead of "returning twice".  Everything the paper
measures — address-space COW, shared file descriptions, signal-state
rules, the single-surviving-thread hazard — is cloned exactly; only the
program counter is supplied rather than copied.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional

from ..errors import SimError

# Thread states.
READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
FINISHED = "finished"

# Process states.
ALIVE = "alive"
ZOMBIE = "zombie"
REAPED = "reaped"


class Mutex:
    """A process-local mutex whose *state* lives in process memory.

    This is the object that makes the paper's thread-safety argument
    runnable: because the locked/owner words are ordinary memory, fork
    clones them — so a child forked while another thread holds the lock
    inherits a lock that is held by a thread that does not exist in the
    child, and any attempt to take it deadlocks (experiment T4).
    """

    _ids = itertools.count(1)

    def __init__(self, mid: Optional[int] = None):
        self.id = mid if mid is not None else next(self._ids)
        self.locked = False
        self.owner_tid: Optional[int] = None

    def fork_clone(self) -> "Mutex":
        """The memory image of the mutex, as COW would copy it."""
        clone = Mutex(mid=self.id)
        clone.locked = self.locked
        clone.owner_tid = self.owner_tid
        return clone

    def __repr__(self):
        state = f"held by tid {self.owner_tid}" if self.locked else "free"
        return f"<Mutex #{self.id} {state}>"


class Thread:
    """One schedulable execution context."""

    _tids = itertools.count(1)

    def __init__(self, process: "Process", generator: Generator,
                 name: str = ""):
        self.tid = next(self._tids)
        self.process = process
        self.generator = generator
        self.name = name or f"tid{self.tid}"
        self.state = READY
        self.send_value = None         # result delivered on next resume
        self.throw_value = None        # exception delivered on next resume
        self.wake_predicate = None     # callable() -> bool while BLOCKED
        self.pending_call = None       # syscall request to retry on wake
        self.wake_result = None        # fixed result to deliver on wake
        self.block_reason = ""

    @property
    def runnable(self) -> bool:
        return self.state == READY

    def park(self, predicate, pending_call, reason: str) -> None:
        """Block until ``predicate()`` holds, then retry ``pending_call``."""
        self.state = BLOCKED
        self.wake_predicate = predicate
        self.pending_call = pending_call
        self.block_reason = reason

    def wake(self) -> None:
        """Return to the run queue.

        A parked retry call re-executes on resume; otherwise the stored
        ``wake_result`` is delivered into the generator.
        """
        if self.state != BLOCKED:
            raise SimError(f"waking non-blocked thread {self!r}")
        self.state = READY
        self.wake_predicate = None
        self.block_reason = ""
        if self.pending_call is None:
            self.send_value = self.wake_result
            self.wake_result = None

    def finish(self) -> None:
        self.state = FINISHED
        self.generator = None

    def __repr__(self):
        return (f"<Thread {self.name} tid={self.tid} "
                f"pid={self.process.pid} {self.state}"
                f"{': ' + self.block_reason if self.block_reason else ''}>")


class Process:
    """One process: resources plus threads.

    The kernel wires in the address space, fd table and signal state at
    creation; this class is deliberately a passive record so every
    policy decision (who copies what, when) lives in the syscall layer
    where the experiments can see it.
    """

    def __init__(self, pid: int, ppid: int, name: str = "?"):
        self.pid = pid
        self.ppid = ppid
        self.name = name
        self.state = ALIVE
        self.addrspace = None
        self.fdtable = None
        self.signals = None
        self.threads: List[Thread] = []
        self.children: List[int] = []
        self.exit_status: Optional[int] = None
        self.mutexes: Dict[int, Mutex] = {}
        self.cwd = "/"
        self.argv: List[str] = []
        #: How this process came to exist: "boot", "fork", "vfork",
        #: "clone", "spawn" or "snapshot" — experiments group on it.
        self.origin = "boot"
        #: Job control: True between SIGSTOP and SIGCONT — threads keep
        #: their states but none is scheduled.
        self.stopped = False
        # vfork bookkeeping: set while this process borrows its parent's
        # address space; the parent stays blocked until it clears.
        self.vfork_parent_blocked: Optional[int] = None
        self.shares_parent_as = False

    @property
    def alive(self) -> bool:
        return self.state == ALIVE

    def live_threads(self) -> List[Thread]:
        """Threads that have not finished."""
        return [t for t in self.threads if t.state != FINISHED]

    def main_thread(self) -> Thread:
        if not self.threads:
            raise SimError(f"process {self.pid} has no threads")
        return self.threads[0]

    def fork_mutex_table(self) -> Dict[int, Mutex]:
        """Clone every mutex *as memory*, held state included."""
        return {mid: m.fork_clone() for mid, m in self.mutexes.items()}

    def __repr__(self):
        return (f"<Process {self.name!r} pid={self.pid} {self.state} "
                f"threads={len(self.live_threads())}>")
