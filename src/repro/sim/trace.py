"""Syscall tracing: strace/perf for the simulated kernel.

Attach a :class:`Tracer` to a kernel and every executed syscall is
recorded with its virtual start time, duration, process/thread identity
and the work it performed.  The trace can be summarised (time per
syscall, like ``strace -c``), rendered as text, or exported in Chrome's
trace-event JSON format for chrome://tracing / Perfetto.

    kernel = Kernel()
    tracer = Tracer().attach(kernel)
    ... run programs ...
    print(tracer.trace.summary_table())
    tracer.trace.to_chrome_json("trace.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimError
from .params import WorkCounters


@dataclass(frozen=True)
class SyscallEvent:
    """One executed syscall."""

    start_ns: float
    duration_ns: float
    pid: int
    tid: int
    process_name: str
    name: str
    outcome: str                      # "ok", "blocked", or an errno name
    pages_copied: int = 0
    ptes_copied: int = 0
    faults: int = 0

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


@dataclass
class Trace:
    """An ordered list of syscall events plus the queries over it."""

    events: List[SyscallEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def record(self, event: SyscallEvent) -> None:
        self.events.append(event)

    # -- queries -----------------------------------------------------------

    def for_pid(self, pid: int) -> List[SyscallEvent]:
        """Events from one process."""
        return [e for e in self.events if e.pid == pid]

    def for_syscall(self, name: str) -> List[SyscallEvent]:
        """Events of one syscall."""
        return [e for e in self.events if e.name == name]

    def total_ns(self) -> float:
        """Total virtual time spent in traced syscalls."""
        return sum(e.duration_ns for e in self.events)

    def summary(self) -> Dict[str, dict]:
        """Per-syscall aggregate: calls, total/max duration, errors.

        The ``strace -c`` view; sorted by total time descending.
        """
        rows: Dict[str, dict] = {}
        for event in self.events:
            row = rows.setdefault(event.name, {
                "calls": 0, "total_ns": 0.0, "max_ns": 0.0, "errors": 0})
            row["calls"] += 1
            row["total_ns"] += event.duration_ns
            row["max_ns"] = max(row["max_ns"], event.duration_ns)
            if event.outcome not in ("ok", "blocked"):
                row["errors"] += 1
        return dict(sorted(rows.items(),
                           key=lambda kv: -kv[1]["total_ns"]))

    def summary_table(self) -> str:
        """The summary rendered as fixed-width text."""
        lines = [f"{'syscall':16s} {'calls':>6s} {'total':>12s} "
                 f"{'max':>12s} {'errors':>6s}"]
        lines.append("-" * len(lines[0]))
        for name, row in self.summary().items():
            lines.append(
                f"{name:16s} {row['calls']:6d} {row['total_ns']:12.0f} "
                f"{row['max_ns']:12.0f} {row['errors']:6d}")
        lines.append(f"total traced time: {self.total_ns():.0f} ns over "
                     f"{len(self.events)} calls")
        return "\n".join(lines)

    # -- exports ---------------------------------------------------------

    def to_chrome_events(self) -> List[dict]:
        """Chrome trace-event objects (``ph: X`` complete events)."""
        out = []
        for event in self.events:
            out.append({
                "name": event.name,
                "cat": "syscall",
                "ph": "X",
                "ts": event.start_ns / 1000.0,     # microseconds
                "dur": max(event.duration_ns, 1.0) / 1000.0,
                "pid": event.pid,
                "tid": event.tid,
                "args": {
                    "outcome": event.outcome,
                    "process": event.process_name,
                    "pages_copied": event.pages_copied,
                    "ptes_copied": event.ptes_copied,
                    "faults": event.faults,
                },
            })
        return out

    def to_chrome_json(self, path: Optional[str] = None) -> str:
        """Serialize for chrome://tracing; optionally write to ``path``."""
        payload = json.dumps({"traceEvents": self.to_chrome_events(),
                              "displayTimeUnit": "ns"}, indent=1)
        if path is not None:
            with open(path, "w") as sink:
                sink.write(payload)
        return payload


class Tracer:
    """Attaches to a kernel and records every dispatched syscall.

    Implementation: wraps the kernel's ``_execute`` and ``timed_call``
    entry points.  Detach restores the originals; attaching twice or
    detaching while unattached is an error (it would corrupt the
    wrapping chain).
    """

    def __init__(self):
        self.trace = Trace()
        self._kernel = None
        self._original_execute = None
        self._original_timed_call = None

    @property
    def attached(self) -> bool:
        return self._kernel is not None

    def attach(self, kernel) -> "Tracer":
        if self.attached:
            raise SimError("tracer is already attached")
        self._kernel = kernel
        self._original_execute = kernel._execute
        self._original_timed_call = kernel.timed_call
        kernel._execute = self._traced_execute
        kernel.timed_call = self._traced_timed_call
        return self

    def detach(self) -> "Trace":
        if not self.attached:
            raise SimError("tracer is not attached")
        self._kernel._execute = self._original_execute
        self._kernel.timed_call = self._original_timed_call
        self._kernel = None
        return self.trace

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        if self.attached:
            self.detach()

    # -- wrappers -----------------------------------------------------------

    def _snapshot(self):
        kernel = self._kernel
        return kernel.now_ns, kernel.counters.snapshot()

    def _emit(self, thread, name: str, start_ns: float,
              before: WorkCounters, outcome: str) -> None:
        kernel = self._kernel
        delta = kernel.counters.delta(before)
        self.trace.record(SyscallEvent(
            start_ns=start_ns,
            duration_ns=kernel.now_ns - start_ns,
            pid=thread.process.pid,
            tid=thread.tid,
            process_name=thread.process.name,
            name=name,
            outcome=outcome,
            pages_copied=delta.pages_copied,
            ptes_copied=delta.ptes_copied,
            faults=delta.faults,
        ))

    def _traced_execute(self, thread, request) -> None:
        start_ns, before = self._snapshot()
        self._original_execute(thread, request)
        name = getattr(request, "name", "<bad-request>")
        if thread.state == "blocked":
            outcome = "blocked"
        elif isinstance(thread.throw_value, Exception):
            outcome = getattr(thread.throw_value, "errno_name", "error")
        else:
            outcome = "ok"
        self._emit(thread, name, start_ns, before, outcome)

    def _traced_timed_call(self, thread, name, *args, **kwargs):
        start_ns, before = self._snapshot()
        try:
            result = self._original_timed_call(thread, name, *args,
                                               **kwargs)
        except Exception as exc:
            outcome = getattr(exc, "errno_name", "error")
            self._emit(thread, name, start_ns, before, outcome)
            raise
        self._emit(thread, name, start_ns, before, "ok")
        return result
