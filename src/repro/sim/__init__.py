"""Simulated Unix kernel substrate.

Submodules are importable directly (``from repro.sim.addrspace import
AddressSpace``); the package root re-exports the pieces most users need.
The one-stop entry point is :class:`repro.sim.kernel.Kernel` — see its
docstring for the programming model.
"""

from .addrspace import AddressSpace, ZERO_FRAME
from .frames import AggregateFrame, Frame, FrameAllocator
from .fs import VFS, Inode, OpenFileDescription
from .fdtable import FDTable
from .kernel import Kernel, ProgramImage, SyscallProxy, SyscallRequest
from .locks import ContentionResult, fork_stall_ns, simulate_contention
from .overcommit import CommitPolicy
from .params import (CostModel, SimConfig, WorkCounters, GIB, KIB, MIB,
                     PAGE_SIZE, pages_for)
from .pipes import Pipe
from .process import Mutex, Process, Thread
from .shm import ShmBacking
from .signals import SignalState
from .tlb import TLBModel
from .trace import SyscallEvent, Trace, Tracer
from .vma import VMA, BulkRun

__all__ = [
    "AddressSpace", "AggregateFrame", "BulkRun", "CommitPolicy",
    "ContentionResult", "CostModel", "FDTable", "Frame", "FrameAllocator",
    "GIB", "Inode", "KIB", "Kernel", "MIB", "Mutex", "OpenFileDescription",
    "PAGE_SIZE", "Pipe", "Process", "ProgramImage", "ShmBacking",
    "SignalState", "SimConfig", "SyscallEvent", "SyscallProxy",
    "SyscallRequest", "TLBModel", "Trace", "Tracer",
    "Thread", "VFS", "VMA", "WorkCounters", "ZERO_FRAME", "fork_stall_ns",
    "pages_for", "simulate_contention",
]
