"""Signals: dispositions, masks, pending sets, and the fork/exec rules.

Signals are prime exhibits in the paper's "fork is no longer simple"
catalogue, because POSIX special-cases them on *both* transitions:

* ``fork``  — the child inherits handlers and mask, but its **pending set
  is cleared** (a queued SIGTERM does not follow you into the child);
* ``exec`` — caught signals **reset to default** (the handler functions
  no longer exist in the new image) while **ignored signals stay
  ignored** (which is why shells ignore SIGINT around background jobs).

:meth:`SignalState.fork_copy` and :meth:`SignalState.apply_exec` encode
those rules; the apisurface catalog cites them, and the kernel's delivery
path consumes :meth:`deliverable` when resuming threads.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..errors import SimOSError

# Signal numbers (the classic Linux x86 values, for familiarity).
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGTERM = 15
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19

ALL_SIGNALS = frozenset({
    SIGHUP, SIGINT, SIGQUIT, SIGKILL, SIGUSR1, SIGSEGV, SIGUSR2, SIGPIPE,
    SIGTERM, SIGCHLD, SIGCONT, SIGSTOP,
})

#: Signals whose disposition cannot be changed.
UNCATCHABLE = frozenset({SIGKILL, SIGSTOP})

#: Signals whose default action is to ignore.
DEFAULT_IGNORED = frozenset({SIGCHLD, SIGCONT})

SIGNAL_NAMES = {
    SIGHUP: "SIGHUP", SIGINT: "SIGINT", SIGQUIT: "SIGQUIT",
    SIGKILL: "SIGKILL", SIGUSR1: "SIGUSR1", SIGSEGV: "SIGSEGV",
    SIGUSR2: "SIGUSR2", SIGPIPE: "SIGPIPE", SIGTERM: "SIGTERM",
    SIGCHLD: "SIGCHLD", SIGCONT: "SIGCONT", SIGSTOP: "SIGSTOP",
}

#: Disposition sentinels (callables are also valid dispositions).
SIG_DFL = "default"
SIG_IGN = "ignore"


def _check_signal(signum: int) -> None:
    if signum not in ALL_SIGNALS:
        raise SimOSError("EINVAL", f"bad signal number {signum}")


class SignalState:
    """One process's signal bookkeeping.

    ``handlers`` maps signal number to ``SIG_DFL``, ``SIG_IGN`` or a
    callable; unlisted signals are at default.  ``mask`` blocks delivery
    (signals stay pending); ``pending`` holds undelivered signals.
    """

    def __init__(self):
        self.handlers: Dict[int, object] = {}
        self.mask: Set[int] = set()
        self.pending: Set[int] = set()

    # -- sigaction / sigprocmask ------------------------------------------

    def set_handler(self, signum: int, disposition) -> object:
        """Install a disposition; returns the previous one."""
        _check_signal(signum)
        if signum in UNCATCHABLE and disposition != SIG_DFL:
            raise SimOSError("EINVAL",
                             f"{SIGNAL_NAMES[signum]} cannot be caught")
        previous = self.handlers.get(signum, SIG_DFL)
        if disposition == SIG_DFL:
            self.handlers.pop(signum, None)
        else:
            self.handlers[signum] = disposition
        return previous

    def get_handler(self, signum: int):
        """The current disposition for ``signum``."""
        _check_signal(signum)
        return self.handlers.get(signum, SIG_DFL)

    def block(self, signums: Set[int]) -> None:
        """Add signals to the mask (``SIG_BLOCK``); KILL/STOP never mask."""
        for s in signums:
            _check_signal(s)
        self.mask |= set(signums) - UNCATCHABLE

    def unblock(self, signums: Set[int]) -> None:
        """Remove signals from the mask (``SIG_UNBLOCK``)."""
        for s in signums:
            _check_signal(s)
        self.mask -= set(signums)

    # -- delivery -----------------------------------------------------------

    def post(self, signum: int) -> None:
        """Mark a signal pending (the ``kill`` side)."""
        _check_signal(signum)
        self.pending.add(signum)

    def is_ignored(self, signum: int) -> bool:
        """Whether delivery would be a no-op."""
        handler = self.get_handler(signum)
        if handler == SIG_IGN:
            return True
        return handler == SIG_DFL and signum in DEFAULT_IGNORED

    def deliverable(self) -> Optional[int]:
        """The next signal that can be acted on, or ``None``.

        Unmasked pending signals only; KILL beats everything else.
        Ignored signals are consumed (removed from pending) without being
        reported, as a real kernel quietly discards them.
        """
        ready = self.pending - self.mask
        for signum in sorted(ready):
            if signum != SIGKILL and self.is_ignored(signum):
                self.pending.discard(signum)
        ready = self.pending - self.mask
        if not ready:
            return None
        if SIGKILL in ready:
            return SIGKILL
        return min(ready)

    def take(self, signum: int) -> None:
        """Consume a pending signal that is about to be acted on."""
        self.pending.discard(signum)

    # -- the POSIX fork/exec special cases ----------------------------------

    def fork_copy(self) -> "SignalState":
        """Child state at fork: handlers and mask copied, pending cleared."""
        child = SignalState()
        child.handlers = dict(self.handlers)
        child.mask = set(self.mask)
        # POSIX: "the child process's pending signal set is empty".
        child.pending = set()
        return child

    def apply_exec(self) -> None:
        """State surgery at exec: caught → default, ignored stays ignored.

        The mask and pending set survive exec (another special case the
        apisurface catalog records).
        """
        for signum in list(self.handlers):
            if self.handlers[signum] != SIG_IGN:
                del self.handlers[signum]

    def __repr__(self):
        caught = sorted(SIGNAL_NAMES[s] for s in self.handlers)
        return (f"<SignalState caught={caught} "
                f"masked={sorted(self.mask)} pending={sorted(self.pending)}>")
