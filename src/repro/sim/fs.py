"""An in-memory Unix filesystem: inodes, directories, open-file state.

The part of this module the paper actually leans on is
:class:`OpenFileDescription` (OFD): POSIX specifies that ``fork`` shares
*open file descriptions* — not just descriptor numbers — between parent
and child, so the **file offset is shared state** across processes.  That
is one of fork's composition hazards (two processes appending through an
inherited descriptor interleave at a shared offset) and one of the
semantics ``posix_spawn``'s file actions exist to avoid.  The OFD/FD
split is modelled faithfully; the filesystem around it is a small but
complete tree (lookup, create, unlink, directories, permissions-free).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..errors import SimOSError

#: Seek anchors, matching ``os.SEEK_*``.
SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


class Inode:
    """A filesystem object: regular file or directory.

    Regular files hold their bytes in ``data``.  For memory mapping, file
    content is exposed page-by-page through :meth:`page_value` /
    :meth:`write_page`, using raw ``bytes`` slices as page tokens (shared
    file mappings store written tokens in ``mmap_pages``, which takes
    precedence over ``data`` — a simplified unified page cache).
    """

    _ids = itertools.count(2)  # inode 1 is the root directory

    def __init__(self, kind: str, name_hint: str = "?", ino: Optional[int] = None):
        if kind not in ("file", "dir", "fifo"):
            raise SimOSError("EINVAL", f"bad inode kind {kind!r}")
        self.ino = ino if ino is not None else next(self._ids)
        self.kind = kind
        self.name_hint = name_hint
        self.data = bytearray()
        self.children: Dict[str, "Inode"] = {}
        self.nlink = 1
        self.mmap_pages: Dict[int, object] = {}
        self.pipe = None  # set for fifos by the kernel

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def size(self) -> int:
        return len(self.data)

    # -- mmap backing protocol -----------------------------------------

    def page_value(self, page_index: int, page_size: int = 4096):
        """Page token for mmap: override if shared-written, else bytes."""
        if page_index in self.mmap_pages:
            return self.mmap_pages[page_index]
        lo = page_index * page_size
        if lo >= len(self.data):
            return None
        return bytes(self.data[lo:lo + page_size])

    def write_page(self, page_index: int, value) -> None:
        """Store a shared-mapping write (token granularity)."""
        self.mmap_pages[page_index] = value

    def acquire_mapping(self) -> None:
        """Mapping refcounts are a no-op for persistent inodes."""

    def release_mapping(self, allocator=None) -> None:
        """Mapping refcounts are a no-op for persistent inodes."""

    def __repr__(self):
        return f"<Inode #{self.ino} {self.kind} {self.name_hint!r}>"


class OpenFileDescription:
    """Shared open-file state: inode, offset, status flags.

    This is the object ``dup`` and ``fork`` alias.  ``refcount`` counts
    file descriptors (across all processes) that point here; the offset
    mutation seen through one descriptor is seen through all of them —
    the behaviour :class:`tests <tests.sim.test_fs>` pin down because the
    paper's composition argument depends on it.
    """

    _ids = itertools.count()

    def __init__(self, inode: Inode, readable: bool, writable: bool,
                 append: bool = False):
        self.id = next(self._ids)
        self.inode = inode
        self.readable = readable
        self.writable = writable
        self.append = append
        self.offset = 0
        self.refcount = 1

    def incref(self) -> None:
        self.refcount += 1

    def decref(self) -> None:
        if self.refcount <= 0:
            raise SimOSError("EBADF", "open file description over-released")
        self.refcount -= 1
        if self.refcount == 0 and self.inode.pipe is not None:
            self.inode.pipe.endpoint_closed(self)

    def read(self, nbytes: int) -> bytes:
        """Read up to ``nbytes`` from the shared offset."""
        if not self.readable:
            raise SimOSError("EBADF", "not open for reading")
        if self.inode.pipe is not None:
            return self.inode.pipe.read(nbytes)
        data = bytes(self.inode.data[self.offset:self.offset + nbytes])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write at the shared offset (or at EOF in append mode)."""
        if not self.writable:
            raise SimOSError("EBADF", "not open for writing")
        if self.inode.pipe is not None:
            return self.inode.pipe.write(data)
        if self.append:
            self.offset = len(self.inode.data)
        end = self.offset + len(data)
        if end > len(self.inode.data):
            self.inode.data.extend(b"\x00" * (end - len(self.inode.data)))
        self.inode.data[self.offset:end] = data
        self.offset = end
        return len(data)

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Reposition the shared offset; returns the new position."""
        if self.inode.pipe is not None:
            raise SimOSError("ESPIPE", "seek on a pipe")
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = len(self.inode.data) + offset
        else:
            raise SimOSError("EINVAL", f"bad whence {whence}")
        if new < 0:
            raise SimOSError("EINVAL", "negative file offset")
        self.offset = new
        return new

    def __repr__(self):
        return (f"<OFD #{self.id} ino={self.inode.ino} off={self.offset} "
                f"rc={self.refcount}>")


class VFS:
    """A single-rooted in-memory filesystem tree."""

    def __init__(self):
        self.root = Inode("dir", "/", ino=1)

    # -- path plumbing ---------------------------------------------------

    @staticmethod
    def _parts(path: str) -> List[str]:
        if not path.startswith("/"):
            raise SimOSError("EINVAL", f"path must be absolute: {path!r}")
        return [p for p in path.split("/") if p]

    def _walk(self, parts: List[str]) -> Inode:
        node = self.root
        for part in parts:
            if not node.is_dir:
                raise SimOSError("ENOTDIR", part)
            child = node.children.get(part)
            if child is None:
                raise SimOSError("ENOENT", "/" + "/".join(parts))
            node = child
        return node

    def lookup(self, path: str) -> Inode:
        """Resolve ``path`` to an inode or raise ``ENOENT``."""
        return self._walk(self._parts(path))

    def exists(self, path: str) -> bool:
        """Whether ``path`` resolves."""
        try:
            self.lookup(path)
            return True
        except SimOSError:
            return False

    def _parent_of(self, path: str) -> Tuple[Inode, str]:
        parts = self._parts(path)
        if not parts:
            raise SimOSError("EINVAL", "operation on /")
        parent = self._walk(parts[:-1])
        if not parent.is_dir:
            raise SimOSError("ENOTDIR", path)
        return parent, parts[-1]

    # -- tree operations ---------------------------------------------------

    def mkdir(self, path: str) -> Inode:
        """Create one directory (parents must exist)."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise SimOSError("EEXIST", path)
        node = Inode("dir", name)
        parent.children[name] = node
        return node

    def makedirs(self, path: str) -> Inode:
        """Create a directory and any missing ancestors."""
        parts = self._parts(path)
        node = self.root
        for part in parts:
            nxt = node.children.get(part)
            if nxt is None:
                nxt = Inode("dir", part)
                node.children[part] = nxt
            elif not nxt.is_dir:
                raise SimOSError("ENOTDIR", path)
            node = nxt
        return node

    def create(self, path: str, data: bytes = b"") -> Inode:
        """Create a regular file with ``data`` (parent must exist)."""
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise SimOSError("EEXIST", path)
        node = Inode("file", name)
        node.data = bytearray(data)
        parent.children[name] = node
        return node

    def unlink(self, path: str) -> None:
        """Remove a directory entry; open OFDs keep the inode alive."""
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise SimOSError("ENOENT", path)
        if node.is_dir:
            raise SimOSError("EISDIR", path)
        del parent.children[name]
        node.nlink -= 1

    def listdir(self, path: str) -> List[str]:
        """Names in a directory, sorted."""
        node = self.lookup(path)
        if not node.is_dir:
            raise SimOSError("ENOTDIR", path)
        return sorted(node.children)

    def rename(self, old_path: str, new_path: str) -> None:
        """Move a directory entry; replaces a non-directory target."""
        old_parent, old_name = self._parent_of(old_path)
        node = old_parent.children.get(old_name)
        if node is None:
            raise SimOSError("ENOENT", old_path)
        new_parent, new_name = self._parent_of(new_path)
        existing = new_parent.children.get(new_name)
        if existing is not None:
            if existing.is_dir:
                raise SimOSError("EISDIR", new_path)
            existing.nlink -= 1
        del old_parent.children[old_name]
        new_parent.children[new_name] = node
        node.name_hint = new_name

    def link(self, target_path: str, link_path: str) -> None:
        """Hard link: a second directory entry for the same inode."""
        node = self.lookup(target_path)
        if node.is_dir:
            raise SimOSError("EISDIR", target_path)
        parent, name = self._parent_of(link_path)
        if name in parent.children:
            raise SimOSError("EEXIST", link_path)
        parent.children[name] = node
        node.nlink += 1

    def stat(self, path: str) -> dict:
        """Inode metadata: ``ino``, ``kind``, ``size``, ``nlink``."""
        node = self.lookup(path)
        return {"ino": node.ino, "kind": node.kind, "size": node.size,
                "nlink": node.nlink}

    # -- opening ----------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> OpenFileDescription:
        """Open ``path``; mode is a subset of ``{r,w,a,+,c,t}``.

        ``r`` read, ``w`` write, ``a`` append (implies write), ``+`` both,
        ``c`` create-if-missing, ``t`` truncate.  Returns a fresh OFD with
        refcount 1; the caller owns the reference.
        """
        readable = "r" in mode or "+" in mode
        writable = "w" in mode or "a" in mode or "+" in mode
        if not (readable or writable):
            raise SimOSError("EINVAL", f"bad open mode {mode!r}")
        try:
            inode = self.lookup(path)
        except SimOSError:
            if "c" not in mode:
                raise
            inode = self.create(path)
        if inode.is_dir and writable:
            raise SimOSError("EISDIR", path)
        if "t" in mode:
            if not writable:
                raise SimOSError("EINVAL", "truncate without write")
            inode.data = bytearray()
            inode.mmap_pages.clear()
        return OpenFileDescription(inode, readable, writable,
                                   append=("a" in mode))

    def write_file(self, path: str, data: bytes) -> None:
        """Convenience: create-or-replace a whole file."""
        if self.exists(path):
            inode = self.lookup(path)
            inode.data = bytearray(data)
            inode.mmap_pages.clear()
        else:
            self.create(path, data)

    def read_file(self, path: str) -> bytes:
        """Convenience: the whole content of a file."""
        inode = self.lookup(path)
        if inode.is_dir:
            raise SimOSError("EISDIR", path)
        return bytes(inode.data)
