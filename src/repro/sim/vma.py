"""Virtual memory areas (VMAs) and bulk population runs.

A :class:`VMA` is a contiguous range of virtual addresses with one
protection and one backing (anonymous or file).  An address space is an
ordered, non-overlapping list of VMAs — exactly Linux's model, and the
structure whose duplication dominates fork's cost.

:class:`BulkRun` is the simulator's scalability device: a run of pages
populated en masse (benchmark ballast) is described by one object carrying
an :class:`~repro.sim.frames.AggregateFrame`, instead of millions of page
table entries.  Pages that a program later touches *individually* are
evicted from the run into the sparse page table via the run's
``exceptions`` set, so correctness-path semantics (COW isolation) are
preserved page by page while cost-path arithmetic stays O(1) per run.
"""

from __future__ import annotations

import itertools
from typing import Optional, Set

from ..errors import SimError
from .frames import AggregateFrame

PROT_CHARS = "rwx"


def parse_prot(prot: str) -> frozenset:
    """Normalise a protection string like ``"rw"`` into a flag set."""
    flags = set()
    for ch in prot:
        if ch == "-":
            continue
        if ch not in PROT_CHARS:
            raise SimError(f"bad protection flag {ch!r} in {prot!r}")
        flags.add(ch)
    return frozenset(flags)


def format_prot(flags: frozenset) -> str:
    """Render a flag set as the classic ``rwx``/``r--`` string."""
    return "".join(ch if ch in flags else "-" for ch in PROT_CHARS)


class BulkRun:
    """A run of uniformly-populated pages inside one VMA.

    Attributes:
        start_vpn / npages: the virtual range the run covers.
        agg: the aggregate frame charged with the run's physical pages.
        writable / cow: effective page-level rights, mirroring PTE bits.
        exceptions: vpns inside the range that are *no longer* served by
            the run (they moved to the sparse page table).  Kept small by
            construction — only individually-touched pages land here.
    """

    __slots__ = ("start_vpn", "npages", "agg", "writable", "cow", "exceptions")

    def __init__(self, start_vpn: int, npages: int, agg: AggregateFrame,
                 writable: bool, cow: bool = False,
                 exceptions: Optional[Set[int]] = None):
        if npages <= 0:
            raise SimError("bulk run needs a positive page count")
        self.start_vpn = start_vpn
        self.npages = npages
        self.agg = agg
        self.writable = writable
        self.cow = cow
        self.exceptions = set() if exceptions is None else set(exceptions)

    @property
    def end_vpn(self) -> int:
        """One past the last vpn in the run's range."""
        return self.start_vpn + self.npages

    def covers(self, vpn: int) -> bool:
        """True if the run currently serves ``vpn``."""
        return (self.start_vpn <= vpn < self.end_vpn
                and vpn not in self.exceptions)

    def mapped_pages(self) -> int:
        """Pages the run currently serves."""
        return self.npages - len(self.exceptions)

    def mapped_pages_in(self, start_vpn: int, end_vpn: int) -> int:
        """Pages served inside ``[start_vpn, end_vpn)``."""
        lo = max(self.start_vpn, start_vpn)
        hi = min(self.end_vpn, end_vpn)
        if hi <= lo:
            return 0
        excluded = sum(1 for vpn in self.exceptions if lo <= vpn < hi)
        return (hi - lo) - excluded

    def __repr__(self):
        return (f"<BulkRun vpn[{self.start_vpn},{self.end_vpn}) "
                f"mapped={self.mapped_pages()} agg=#{self.agg.index}>")


class VMA:
    """One virtual memory area.

    ``start`` and ``end`` are byte addresses, page aligned, ``end``
    exclusive.  ``shared`` distinguishes MAP_SHARED from MAP_PRIVATE;
    private writable mappings are the ones fork must mark copy-on-write.
    File-backed VMAs carry the backing inode and starting offset.
    """

    _ids = itertools.count()

    def __init__(self, start: int, end: int, prot: str = "rw", *,
                 shared: bool = False, name: str = "[anon]",
                 inode=None, file_offset: int = 0):
        if end <= start:
            raise SimError(f"empty VMA [{start:#x},{end:#x})")
        self.id = next(self._ids)
        self.start = start
        self.end = end
        self.prot = parse_prot(prot) if isinstance(prot, str) else frozenset(prot)
        self.shared = shared
        self.name = name
        self.inode = inode
        self.file_offset = file_offset
        self.bulk_runs: list = []
        # For shared mappings, which vpns this address space has already
        # faulted in (accesses go through the backing object; this set
        # only drives fault accounting).
        self.touched_vpns: Set[int] = set()

    @property
    def length(self) -> int:
        """Size of the area in bytes."""
        return self.end - self.start

    @property
    def readable(self) -> bool:
        return "r" in self.prot

    @property
    def writable(self) -> bool:
        return "w" in self.prot

    @property
    def executable(self) -> bool:
        return "x" in self.prot

    @property
    def anonymous(self) -> bool:
        """True when not backed by a file."""
        return self.inode is None

    def contains(self, addr: int) -> bool:
        """True if ``addr`` falls inside the area."""
        return self.start <= addr < self.end

    def overlaps(self, start: int, end: int) -> bool:
        """True if ``[start, end)`` intersects the area."""
        return start < self.end and end > self.start

    def run_covering(self, vpn: int) -> Optional[BulkRun]:
        """The bulk run serving ``vpn``, if any."""
        for run in self.bulk_runs:
            if run.covers(vpn):
                return run
        return None

    def clone_for_fork(self, child_runs: list) -> "VMA":
        """A child copy of this VMA with the given bulk runs attached.

        Frame bookkeeping (refcounts, COW bits) is the address space's
        job; this only duplicates descriptor state.
        """
        child = VMA(self.start, self.end, self.prot, shared=self.shared,
                    name=self.name, inode=self.inode,
                    file_offset=self.file_offset)
        child.bulk_runs = child_runs
        child.touched_vpns = set(self.touched_vpns)
        return child

    def __repr__(self):
        return (f"<VMA [{self.start:#x},{self.end:#x}) "
                f"{format_prot(self.prot)} "
                f"{'shared' if self.shared else 'private'} {self.name}>")
