"""Pipes: bounded byte channels with Unix end-of-file and EPIPE rules.

Pipes matter to this reproduction twice over.  They are the plumbing of
the composition examples (shells, pipelines — the workload fork was
designed around), and they are fork-semantics hazards in their own right:
a forgotten inherited write end keeps a pipe's readers from ever seeing
EOF, a classic fork bug that the spawn API's explicit file actions make
structurally impossible.

Reads and writes are non-blocking at this layer: they return/raise
``WouldBlock`` and the scheduler parks the calling thread until the state
changes.  That keeps the pipe itself free of any scheduling policy.
"""

from __future__ import annotations

import itertools
from ..errors import SimOSError
from .fs import Inode, OpenFileDescription

#: Default pipe capacity, matching Linux's 64 KiB.
PIPE_BUF_DEFAULT = 65536


class WouldBlock(Exception):
    """The operation cannot progress now; the caller should park.

    Deliberately *not* a :class:`~repro.errors.SimOSError`: simulated
    programs never see it — the kernel's syscall layer catches it and
    blocks the thread.
    """


class BrokenPipe(SimOSError):
    """Write on a pipe with no readers (``EPIPE``, pairs with SIGPIPE)."""

    def __init__(self):
        super().__init__("EPIPE", "write on a pipe with no readers")


class Pipe:
    """A bounded in-kernel byte buffer with reader/writer endpoint counts.

    End-of-file and broken-pipe semantics follow POSIX exactly:

    * read on empty pipe: ``WouldBlock`` while writers exist, ``b""``
      (EOF) once every writer closed;
    * write on full pipe: ``WouldBlock`` while readers exist;
    * write with no readers: :class:`BrokenPipe` (the kernel layer turns
      this into SIGPIPE).
    """

    _ids = itertools.count()

    def __init__(self, capacity: int = PIPE_BUF_DEFAULT):
        if capacity <= 0:
            raise SimOSError("EINVAL", "pipe capacity must be positive")
        self.id = next(self._ids)
        self.capacity = capacity
        self.buffer = bytearray()
        self.read_ofds = 0
        self.write_ofds = 0
        self.bytes_transferred = 0

    # -- endpoint lifetime -------------------------------------------------

    def make_endpoints(self) -> "tuple[OpenFileDescription, OpenFileDescription]":
        """Create the ``(read_end, write_end)`` OFD pair for ``pipe()``."""
        read_inode = Inode("fifo", f"pipe:[{self.id}].r")
        write_inode = Inode("fifo", f"pipe:[{self.id}].w")
        read_inode.pipe = self
        write_inode.pipe = self
        read_end = OpenFileDescription(read_inode, readable=True,
                                       writable=False)
        write_end = OpenFileDescription(write_inode, readable=False,
                                        writable=True)
        self.read_ofds += 1
        self.write_ofds += 1
        return read_end, write_end

    def endpoint_closed(self, ofd: OpenFileDescription) -> None:
        """Called by the OFD layer when an endpoint's last ref drops."""
        if ofd.readable:
            if self.read_ofds <= 0:
                raise SimOSError("EBADF", "pipe reader count underflow")
            self.read_ofds -= 1
        else:
            if self.write_ofds <= 0:
                raise SimOSError("EBADF", "pipe writer count underflow")
            self.write_ofds -= 1

    # -- data ---------------------------------------------------------------

    @property
    def readable_now(self) -> bool:
        """Whether a read would return without blocking."""
        return bool(self.buffer) or self.write_ofds == 0

    @property
    def writable_now(self) -> bool:
        """Whether a write could make progress (or fail fast) right now."""
        return len(self.buffer) < self.capacity or self.read_ofds == 0

    def read(self, nbytes: int) -> bytes:
        """Drain up to ``nbytes``; EOF is ``b""``; may raise WouldBlock."""
        if nbytes < 0:
            raise SimOSError("EINVAL", "negative read size")
        if not self.buffer:
            if self.write_ofds == 0:
                return b""
            raise WouldBlock()
        data = bytes(self.buffer[:nbytes])
        del self.buffer[:len(data)]
        return data

    def write(self, data: bytes) -> int:
        """Append as much of ``data`` as fits; returns bytes accepted.

        Partial writes are allowed (as for a real ``write(2)`` on a pipe
        larger than the free space); zero free space raises WouldBlock.
        """
        if self.read_ofds == 0:
            raise BrokenPipe()
        free = self.capacity - len(self.buffer)
        if free == 0:
            raise WouldBlock()
        accepted = data[:free]
        self.buffer.extend(accepted)
        self.bytes_transferred += len(accepted)
        return len(accepted)

    def __repr__(self):
        return (f"<Pipe #{self.id} buf={len(self.buffer)}/{self.capacity} "
                f"r={self.read_ofds} w={self.write_ofds}>")
