"""Fork emulated on a kernel that never wanted it (the WSL story).

The paper's "implementing fork" section: fork *infects* OS design.  A
kernel built around explicit process construction (Zircon, NT's
picoprocesses under WSL1) that later needs Unix compatibility must
*emulate* fork through its explicit interfaces — and the emulation is
ugly: without kernel-level copy-on-write hooks, every resident page is
copied eagerly, every descriptor granted one by one, and the layout must
be forced to match the parent (defeating the clean API's fresh ASLR).

:meth:`EmulationSyscalls.sys_fork_emulated` implements exactly that on
top of the same public address-space operations the cross-process API
uses.  Comparing its cost against native :meth:`sys_fork` quantifies the
tax (experiment A3): the emulation pays a page *copy* plus a write fault
per resident page where native COW fork pays one PTE write — and it
forfeits COW sharing, so memory use doubles immediately.
"""

from __future__ import annotations

from ..process import Process
from ..vma import format_prot
from .base import KernelFacet


class EmulationSyscalls(KernelFacet):
    """``fork`` rebuilt from explicit construction primitives."""

    def sys_fork_emulated(self, thread, child_main, *args) -> int:
        """fork() for a kernel with no fork: eager copy via explicit ops.

        Semantically close to fork — same layout, same memory contents,
        every descriptor present, signal state copied — but implemented
        only with operations an explicit-construction kernel exports:
        map-at-address, write-page, grant-descriptor.  No copy-on-write
        is available across address spaces, so cost and memory are both
        proportional to the parent's resident set *immediately*.
        """
        parent = thread.process
        self.charge_fixed(self.cost.fixed_spawn_ns)
        child_as = self.make_address_space(f"{parent.name}+emulfork")
        self._copy_address_space(parent.addrspace, child_as)
        child = Process(self.new_pid(), parent.pid,
                        name=f"{parent.name}+emulfork")
        child.addrspace = child_as
        self.as_acquire(child_as)
        # Descriptor table: one explicit grant per descriptor.
        child.fdtable = self.make_fdtable()
        self.fdt_acquire(child.fdtable)
        for fd in parent.fdtable.fds():
            ofd = parent.fdtable.ofd(fd)
            ofd.incref()
            child.fdtable.install(ofd, at=fd,
                                  cloexec=parent.fdtable.get_cloexec(fd))
            self.counters.fd_dups += 1
        child.signals = parent.signals.fork_copy()
        child.mutexes = parent.fork_mutex_table()
        child.argv = list(parent.argv)
        child.cwd = parent.cwd
        self.adopt(child, parent)
        self.attach_thread(child, child_main(self.make_proxy(), *args),
                           name="main")
        return child.pid

    def _copy_address_space(self, parent_as, child_as) -> None:
        """Rebuild the parent's address space through public operations.

        The layout is forced to match the parent (fork semantics demand
        it — pointers must stay valid), which is itself one of the
        emulation's costs: the clean kernel's fresh ASLR must be
        overridden.
        """
        child_as.text_base = parent_as.text_base
        child_as.heap_base = parent_as.heap_base
        child_as.mmap_top = parent_as.mmap_top
        child_as.stack_top = parent_as.stack_top
        for vma in parent_as.vmas:
            child_vma = child_as.map(
                vma.length, format_prot(vma.prot).replace("-", ""),
                shared=vma.shared, addr=vma.start, name=vma.name,
                inode=vma.inode, file_offset=vma.file_offset)
            if vma.shared:
                continue  # shared objects stay shared; nothing to copy
            if not vma.writable:
                # Still must be reproduced; file-backed text faults in
                # from the same image, so only accounting happens here.
                continue
            # Bulk-populated ranges: copy the uniform token en masse —
            # the emulator's one mercy — but pay a real page copy each.
            page = parent_as.page_size
            for run in vma.bulk_runs:
                mapped = run.mapped_pages()
                if mapped == 0:
                    continue
                child_as.populate(run.start_vpn * page, run.npages * page,
                                  value=run.agg.value)
                self.counters.pages_copied += mapped
            # Individually-written pages: one write (fault + allocate)
            # plus one copy each.
            lo, hi = parent_as._vpn(vma.start), parent_as._vpn(vma.end)
            for vpn, pte in parent_as.pagetable.entries_in(lo, hi):
                if pte.zero:
                    continue
                child_as.write(vpn * page, pte.frame.value)
                self.counters.pages_copied += 1
        child_as.brk = parent_as.brk
