"""Memory syscalls: mmap, munmap, mprotect, brk, page access, ballast."""

from __future__ import annotations

from .base import KernelFacet


class MemorySyscalls(KernelFacet):
    """Address-space manipulation handlers.

    A :class:`~repro.errors.SimSegfault` raised by the address space is
    translated by the trampoline into a SIGSEGV, so programs die the way
    real ones do rather than seeing a Python exception.
    """

    def sys_mmap(self, thread, length: int, prot: str = "rw", *,
                 shared: bool = False, addr=None, path=None) -> int:
        """Map anonymous or file-backed memory; returns the base address."""
        inode = self.vfs.lookup(path) if path is not None else None
        vma = thread.process.addrspace.map(length, prot, shared=shared,
                                           addr=addr, inode=inode,
                                           name=path or "[anon]")
        return vma.start

    def sys_munmap(self, thread, addr: int, length: int) -> int:
        """Unmap ``[addr, addr+length)``."""
        thread.process.addrspace.unmap(addr, length)
        return 0

    def sys_mprotect(self, thread, addr: int, length: int, prot: str) -> int:
        """Change protection on a range."""
        thread.process.addrspace.protect(addr, length, prot)
        return 0

    def sys_sbrk(self, thread, delta: int) -> int:
        """Adjust the heap break; returns the new break."""
        return thread.process.addrspace.sbrk(delta)

    def sys_poke(self, thread, addr: int, value) -> int:
        """Store a page token at ``addr`` (the simulator's memory write)."""
        thread.process.addrspace.write(addr, value)
        return 0

    def sys_peek(self, thread, addr: int):
        """Load the page token at ``addr``."""
        return thread.process.addrspace.read(addr)

    def sys_populate(self, thread, addr: int, nbytes: int, value=None) -> int:
        """Dirty a range in bulk (benchmark ballast); returns pages touched."""
        return thread.process.addrspace.populate(addr, nbytes, value)

    def sys_dirty(self, thread, addr: int, nbytes: int, value=None) -> int:
        """Write every page in a range (COW pages break); returns pages.

        The bulk form of "store to each page of my heap" — what a forked
        child does to its logically-copied memory, and the operation
        that makes overcommitted promises come due.
        """
        return thread.process.addrspace.dirty(addr, nbytes, value)

    def sys_rss(self, thread) -> int:
        """Resident set size in bytes (introspection)."""
        return thread.process.addrspace.resident_bytes()

    def sys_vsz(self, thread) -> int:
        """Virtual size in bytes (introspection)."""
        return thread.process.addrspace.virtual_bytes()

    def sys_layout(self, thread):
        """The address space's ASLR layout signature (experiment A2)."""
        return thread.process.addrspace.layout_signature()
