"""The paper's proposed alternative: a cross-process construction API.

Instead of cloning the caller (fork) or accreting flags onto a monolithic
spawn call, the paper points to systems like Zircon and ExOS where a new
process starts **empty** and the parent explicitly builds it through
handles: map memory into it, install descriptors into it, then start a
thread.  Nothing is inherited by accident; cost is proportional to what
you transfer; and the "exotic" fork use cases (preload a cache, set up a
sandbox) become ordinary sequences of explicit operations.

Handles here are plain integers scoped to the creating process's kernel —
capability transfer and revocation are out of scope for the experiments,
which only need the construction cost and inheritance behaviour.

Every failure names both the *handle* and the *construction stage* in its
:class:`~repro.errors.SimOSError` message (``[EINVAL] xproc_map: bad or
stale process handle 7``), so a failed t10 run is debuggable straight
from a CI log: the stage says which step of the create→map→grant→start
program died, the handle says on which embryo.
"""

from __future__ import annotations

from ...errors import SimOSError
from ..process import Process
from ..signals import SIG_DFL, SignalState
from .base import KernelFacet


class CrossProcessSyscalls(KernelFacet):
    """process_create / xproc_map / xproc_grant_fd / xproc_start."""

    def _embryo(self, handle: int, stage: str) -> Process:
        """The embryo behind ``handle``, or a stage-stamped EINVAL.

        ``stage`` is the construction step that needed the handle
        (``"map"``, ``"grant_fd"``, ``"start"``...); it rides the error
        message so every ``sys_xproc_*`` failure is self-locating.
        """
        embryo = self._embryos.get(handle)
        if embryo is None:
            raise SimOSError(
                "EINVAL",
                f"xproc_{stage}: bad or stale process handle {handle}")
        return embryo

    def sys_xproc_create(self, thread, name: str = "xproc") -> int:
        """Create an empty process; returns a construction handle.

        The embryo has a fresh (fresh-ASLR) address space, an *empty*
        descriptor table, default signal state, and no threads.  It is
        invisible to the scheduler until :meth:`sys_xproc_start`.
        """
        embryo = Process(self.new_pid(), thread.process.pid, name=name)
        embryo.addrspace = self.make_address_space(name)
        self.as_acquire(embryo.addrspace)
        embryo.fdtable = self.make_fdtable()
        self.fdt_acquire(embryo.fdtable)
        embryo.signals = SignalState()
        handle = self._next_handle
        self._next_handle += 1
        self._embryos[handle] = embryo
        return handle

    def sys_xproc_map(self, thread, handle: int, length: int,
                      prot: str = "rw") -> int:
        """Map anonymous memory into the embryo; returns its base address."""
        embryo = self._embryo(handle, "map")
        vma = embryo.addrspace.map(length, prot)
        return vma.start

    def sys_xproc_write(self, thread, handle: int, addr: int, value) -> int:
        """Write one page token into the embryo's memory.

        This is how a parent preloads exactly the state it means to hand
        over — the explicit, pay-per-page alternative to inheriting the
        whole parent image.
        """
        self._embryo(handle, "write").addrspace.write(addr, value)
        return 0

    def sys_xproc_populate(self, thread, handle: int, addr: int,
                           nbytes: int, value=None) -> int:
        """Bulk-populate embryo memory (the ballast path)."""
        embryo = self._embryo(handle, "populate")
        return embryo.addrspace.populate(addr, nbytes, value)

    def sys_xproc_grant_fd(self, thread, handle: int, parent_fd: int,
                           child_fd: int) -> int:
        """Install one of the caller's descriptors into the embryo.

        The single explicit grant replaces fork's inherit-everything: a
        descriptor the parent does not grant simply does not exist in the
        child (experiment A2's descriptor-surface comparison).
        """
        embryo = self._embryo(handle, "grant_fd")
        ofd = thread.process.fdtable.ofd(parent_fd)
        ofd.incref()
        embryo.fdtable.install(ofd, at=child_fd)
        self.counters.fd_dups += 1
        return child_fd

    def sys_xproc_sigaction(self, thread, handle: int, signum: int,
                            disposition=SIG_DFL) -> int:
        """Install one signal disposition into the embryo.

        The explicit counterpart of fork's inherit-all-handlers: the
        embryo starts with every signal at default, and the parent
        installs exactly the dispositions it means the child to have
        (``SIG_DFL``, ``SIG_IGN``, or a callable).  Uncatchable signals
        are rejected the same way :meth:`sys_sigaction` rejects them.
        """
        embryo = self._embryo(handle, "sigaction")
        embryo.signals.set_handler(signum, disposition)
        return 0

    def sys_xproc_start(self, thread, handle: int, path: str,
                        argv=()) -> int:
        """Load ``path``'s image and schedule the embryo; returns its pid.

        The image is resolved *before* the handle is consumed: a start
        against an unregistered path fails with ``ENOENT`` but leaves
        the handle valid, so the caller can still abort (or retry) the
        construction instead of leaking the embryo's resources.
        """
        self._require_handle(handle, "start")
        image = self.lookup_program(path)
        embryo = self._embryos.pop(handle)
        self.charge_fixed(self.cost.fixed_spawn_ns)
        self.build_image(embryo.addrspace, image)
        embryo.argv = [path, *argv]
        embryo.name = path.rsplit("/", 1)[-1]
        self.counters.exec_loads += 1
        self.adopt(embryo, thread.process)
        self.attach_thread(embryo, image.func(self.make_proxy(), *argv),
                           name="main")
        return embryo.pid

    def sys_xproc_abort(self, thread, handle: int) -> int:
        """Destroy an embryo without starting it.

        Refcount hygiene lives here: dropping the embryo's descriptor
        table closes every granted descriptor (decref'ing the shared
        OFDs), and dropping its address space returns every populated
        frame — an aborted construction leaks nothing.
        """
        embryo = self._embryos.pop(self._require_handle(handle, "abort"))
        self.fdt_release(embryo.fdtable)
        self.as_release(embryo.addrspace)
        return 0

    def _require_handle(self, handle: int, stage: str) -> int:
        if handle not in self._embryos:
            raise SimOSError(
                "EINVAL",
                f"xproc_{stage}: bad or stale process handle {handle}")
        return handle
