"""Synchronisation syscalls: process-local mutexes.

Mutex state is process memory (see :class:`repro.sim.process.Mutex`), so
fork clones held locks into children whose owning threads do not exist —
the deterministic deadlock of experiment T4.
"""

from __future__ import annotations

from ...errors import SimOSError
from ..process import Mutex
from .base import KernelFacet, Park


class SyncSyscalls(KernelFacet):
    """mutex_create / mutex_lock / mutex_trylock / mutex_unlock."""

    def _mutex(self, thread, mutex_id: int) -> Mutex:
        mutex = thread.process.mutexes.get(mutex_id)
        if mutex is None:
            raise SimOSError("EINVAL", f"no mutex {mutex_id} in process "
                                       f"{thread.process.pid}")
        return mutex

    def sys_mutex_create(self, thread) -> int:
        """Create a mutex; returns its id."""
        mutex = Mutex()
        thread.process.mutexes[mutex.id] = mutex
        return mutex.id

    def sys_mutex_lock(self, thread, mutex_id: int) -> int:
        """Acquire, blocking while another holder exists.

        The wake predicate looks the mutex up *through the process* on
        every check, so a lock inherited over fork blocks on the child's
        cloned copy — whose owner thread is not in the child.  That
        predicate can never become true: the deadlock detector reports
        it, reproducing the paper's fork-with-threads hazard.
        """
        mutex = self._mutex(thread, mutex_id)
        if mutex.locked and mutex.owner_tid != thread.tid:
            process = thread.process
            raise Park(
                lambda: not process.mutexes[mutex_id].locked,
                f"mutex {mutex_id} held by tid {mutex.owner_tid}")
        if mutex.locked:
            raise SimOSError("EDEADLK",
                             f"tid {thread.tid} relocking mutex {mutex_id}")
        mutex.locked = True
        mutex.owner_tid = thread.tid
        return 0

    def sys_mutex_trylock(self, thread, mutex_id: int) -> bool:
        """Acquire without blocking; returns whether it succeeded."""
        mutex = self._mutex(thread, mutex_id)
        if mutex.locked:
            return False
        mutex.locked = True
        mutex.owner_tid = thread.tid
        return True

    def sys_mutex_unlock(self, thread, mutex_id: int) -> int:
        """Release a mutex held by the calling thread.

        One deliberate relaxation: if the recorded owner thread does not
        exist in the calling process — the post-fork orphaned-lock case —
        any thread may release it.  This models the atfork child-handler
        recovery idiom (``pthread_mutex_init`` in the child) without a
        separate re-init call.
        """
        mutex = self._mutex(thread, mutex_id)
        if not mutex.locked:
            raise SimOSError("EPERM", f"mutex {mutex_id} is not locked")
        if mutex.owner_tid != thread.tid:
            owner_exists = any(
                t.tid == mutex.owner_tid and t.state != "finished"
                for t in thread.process.threads)
            if owner_exists:
                raise SimOSError(
                    "EPERM",
                    f"mutex {mutex_id} owned by tid {mutex.owner_tid}, "
                    f"unlock attempted by tid {thread.tid}")
        mutex.locked = False
        mutex.owner_tid = None
        return 0

    def sys_mutex_holder(self, thread, mutex_id: int):
        """The owning tid, or ``None`` (introspection for tests)."""
        mutex = self._mutex(thread, mutex_id)
        return mutex.owner_tid if mutex.locked else None
