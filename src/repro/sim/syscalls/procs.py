"""Process-lifecycle syscalls: fork, vfork, spawn, exec, exit, wait, clone.

This module is the reproduction's centrepiece: every process-creation API
the paper compares, implemented side by side on the same substrate so
their costs and hazards are directly comparable.

* :meth:`ProcessSyscalls.sys_fork` — duplicate *everything*: address
  space (COW), descriptor table, signal state, mutex memory.  Cost grows
  with the parent.
* :meth:`ProcessSyscalls.sys_vfork` — share the address space, suspend
  the parent until the child execs or exits.  Fast and dangerous.
* :meth:`ProcessSyscalls.sys_spawn` — ``posix_spawn``: build the child
  directly from an image + declarative file actions.  Never touches the
  parent's page tables; cost is independent of parent size.
* :meth:`ProcessSyscalls.sys_execve` — replace the calling process's
  image; the fork+exec pair's second half.
* :meth:`ProcessSyscalls.sys_clone` — the configurable Linux primitive
  (share VM / files / sighand, or create a thread).
"""

from __future__ import annotations

from ...errors import SimOSError
from ..process import Process
from ..signals import SignalState
from .base import EXEC_TRANSFER, EXITED, KernelFacet, Park


def _wrap_entry(iterable):
    """Adapt a plain iterable program body into a generator."""
    result = yield from iterable
    return result


class ProcessSyscalls(KernelFacet):
    """Handlers for process creation, replacement and reaping."""

    # ------------------------------------------------------------------
    # fork family
    # ------------------------------------------------------------------

    def sys_fork(self, thread, child_main, *args) -> int:
        """Create a child as a copy of the caller; returns the child pid.

        ``child_main(sys, *args)`` is the child's continuation (Python
        generators cannot be cloned — see :mod:`repro.sim.process`).  The
        expensive parts are exact: the whole address space is duplicated
        copy-on-write, every descriptor entry is copied (sharing OFDs),
        signal handlers and mask are inherited with pending cleared, and
        mutex memory is cloned *including held state*.  Only the calling
        thread is replicated, per POSIX.
        """
        parent = thread.process
        self.charge_fixed(self.cost.fixed_fork_ns)
        child_as = self.make_address_space(f"{parent.name}+fork")
        try:
            parent.addrspace.fork_into(child_as)
        except Exception:
            child_as.destroy()
            raise
        child = Process(self.new_pid(), parent.pid, name=f"{parent.name}+fork")
        child.addrspace = child_as
        self.as_acquire(child_as)
        child.fdtable = parent.fdtable.clone_for_fork()
        self.fdt_acquire(child.fdtable)
        child.signals = parent.signals.fork_copy()
        child.mutexes = parent.fork_mutex_table()
        child.argv = list(parent.argv)
        child.cwd = parent.cwd
        child.origin = "fork"
        self.adopt(child, parent)
        self.attach_thread(child, child_main(self.make_proxy(), *args),
                           name="main")
        return child.pid

    def sys_vfork(self, thread, child_main, *args) -> int:
        """vfork: child borrows the parent's address space; parent waits.

        Every write the child makes is visible in the parent — the
        behaviour that makes vfork fast and makes POSIX say the child may
        do almost nothing but exec or _exit.  The parent thread stays
        blocked until the child does one of those.
        """
        parent = thread.process
        self.charge_fixed(self.cost.fixed_fork_ns / 4)
        child = Process(self.new_pid(), parent.pid,
                        name=f"{parent.name}+vfork")
        child.addrspace = parent.addrspace
        self.as_acquire(parent.addrspace)
        child.shares_parent_as = True
        child.vfork_parent_blocked = thread.tid
        child.fdtable = parent.fdtable.clone_for_fork()
        self.fdt_acquire(child.fdtable)
        child.signals = parent.signals.fork_copy()
        child.mutexes = parent.mutexes  # same memory, genuinely shared
        child.argv = list(parent.argv)
        child.origin = "vfork"
        self.adopt(child, parent)
        self.attach_thread(child, child_main(self.make_proxy(), *args),
                           name="main")
        raise Park(
            lambda: not child.shares_parent_as or not child.alive,
            f"vfork: waiting for pid {child.pid} to exec or exit",
            result=child.pid)

    def sys_clone(self, thread, child_main, *args, share_vm: bool = False,
                  share_files: bool = False, share_sighand: bool = False,
                  as_thread: bool = False) -> int:
        """The Linux clone spectrum, from full fork to a thread.

        ``as_thread=True`` (CLONE_THREAD) adds a thread to the calling
        process and returns its tid.  Otherwise a new process is created
        that shares whatever the flags say: ``share_vm`` aliases the
        address space (no COW), ``share_files`` aliases the descriptor
        table object itself, ``share_sighand`` aliases signal state.
        """
        parent = thread.process
        if as_thread:
            new = self.attach_thread(
                parent, child_main(self.make_proxy(), *args), name="worker")
            return new.tid
        self.charge_fixed(self.cost.fixed_fork_ns / 2)
        child = Process(self.new_pid(), parent.pid,
                        name=f"{parent.name}+clone")
        if share_vm:
            child.addrspace = parent.addrspace
            self.as_acquire(parent.addrspace)
            child.mutexes = parent.mutexes
        else:
            child_as = self.make_address_space(f"{parent.name}+clone")
            parent.addrspace.fork_into(child_as)
            child.addrspace = child_as
            self.as_acquire(child_as)
            child.mutexes = parent.fork_mutex_table()
        if share_files:
            child.fdtable = parent.fdtable
        else:
            child.fdtable = parent.fdtable.clone_for_fork()
        self.fdt_acquire(child.fdtable)
        if share_sighand:
            child.signals = parent.signals
        else:
            child.signals = parent.signals.fork_copy()
        child.argv = list(parent.argv)
        child.origin = "clone"
        self.adopt(child, parent)
        self.attach_thread(child, child_main(self.make_proxy(), *args),
                           name="main")
        return child.pid

    # ------------------------------------------------------------------
    # exec and spawn
    # ------------------------------------------------------------------

    def sys_execve(self, thread, path: str, argv=()):
        """Replace the calling process's image with a registered program.

        Implements every POSIX exec special case the catalog records:
        fresh address space (fresh ASLR), caught signals reset to default
        while ignored stay ignored, close-on-exec descriptors closed,
        other threads destroyed, mutex memory gone.  A vfork parent
        blocked on this child is released.
        """
        proc = thread.process
        image = self.lookup_program(path)
        self.charge_fixed(self.cost.fixed_exec_ns)
        old_as = proc.addrspace
        new_as = self.make_address_space(path)
        self.build_image(new_as, image)
        was_vfork_child = proc.shares_parent_as
        proc.shares_parent_as = False  # releases a blocked vfork parent
        proc.addrspace = new_as
        self.as_acquire(new_as)
        self.as_release(old_as)
        proc.signals.apply_exec()
        proc.fdtable.apply_exec()
        proc.mutexes = {}  # mutex memory lived in the old image
        for other in proc.threads:
            if other is not thread and other.state != "finished":
                other.finish()
        proc.argv = [path, *argv]
        proc.name = path.rsplit("/", 1)[-1]
        self.counters.exec_loads += 1
        entry = image.func(self.make_proxy(), *argv)
        if not hasattr(entry, "send"):
            entry = iter(entry)
            entry = _wrap_entry(entry)
        thread.generator = entry
        thread.send_value = None
        del was_vfork_child
        return EXEC_TRANSFER

    def sys_spawn(self, thread, path: str, argv=(), file_actions=(),
                  reset_signals: bool = True) -> int:
        """``posix_spawn``: construct a child directly from an image.

        The child inherits the parent's descriptors (OFDs shared, as
        POSIX specifies), then the declarative ``file_actions`` run in
        order — ``("open", fd, path, mode)``, ``("dup2", old, new)``,
        ``("close", fd)`` — then close-on-exec descriptors are closed.
        The parent's address space is never touched: no page-table copy,
        no write-protect pass, no shootdown.  That asymmetry against
        :meth:`sys_fork` *is* Figure 1 of the paper.
        """
        parent = thread.process
        image = self.lookup_program(path)
        self.charge_fixed(self.cost.fixed_spawn_ns)
        child = Process(self.new_pid(), parent.pid,
                        name=path.rsplit("/", 1)[-1])
        child_as = self.make_address_space(path)
        self.build_image(child_as, image)
        child.addrspace = child_as
        self.as_acquire(child_as)
        child.fdtable = parent.fdtable.clone_for_fork()
        self.fdt_acquire(child.fdtable)
        for action in file_actions:
            self._apply_file_action(child, action)
        child.fdtable.apply_exec()
        if reset_signals:
            child.signals = SignalState()
        else:
            child.signals = parent.signals.fork_copy()
            child.signals.apply_exec()
        child.argv = [path, *argv]
        child.cwd = parent.cwd
        child.origin = "spawn"
        self.counters.exec_loads += 1
        self.adopt(child, parent)
        self.attach_thread(child, image.func(self.make_proxy(), *argv),
                           name="main")
        return child.pid

    def _apply_file_action(self, child: Process, action) -> None:
        kind = action[0]
        if kind == "open":
            _, fd, path, mode = action
            ofd = self.vfs.open(path, mode)
            child.fdtable.install(ofd, at=fd)
        elif kind == "dup2":
            _, old_fd, new_fd = action
            child.fdtable.dup2(old_fd, new_fd)
        elif kind == "close":
            _, fd = action
            child.fdtable.close(fd)
        else:
            raise SimOSError("EINVAL", f"bad file action {action!r}")

    # ------------------------------------------------------------------
    # snapshot / restore: a checkpointed process as a spawn source
    # ------------------------------------------------------------------

    def sys_snapshot(self, thread, *, name=None) -> int:
        """Checkpoint the calling process's address space; returns a handle.

        This is the template-zygote idea applied to memory: pay the
        fork-like write-protect sweep *once*, against the live space as
        it is right now, and get back a frozen image that later
        :meth:`sys_spawn_from_snapshot` calls COW-share.  The charge here
        is the same as fork's (it walks the same page tables); the payoff
        is that every restore afterwards costs like spawn, no matter how
        large the live parent grows.
        """
        self.charge_fixed(self.cost.fixed_fork_ns)
        return self.take_snapshot(thread.process, name=name)

    def sys_spawn_from_snapshot(self, thread, handle: int,
                                child_main, *args) -> int:
        """Materialise a child from a snapshot handle; returns its pid.

        Costs like :meth:`sys_spawn` — fixed, independent of the live
        parent — because the child's memory comes from the frozen image,
        not from walking the caller's page tables.  Descriptors are
        inherited from the caller; signals start fresh (spawn semantics,
        not fork semantics).  ``EBADF`` if the handle is unknown or the
        snapshot has been dropped.
        """
        snapshot = self.lookup_snapshot(handle)
        self.charge_fixed(self.cost.fixed_spawn_ns)
        child = self.spawn_from_snapshot(snapshot, child_main, *args,
                                         parent=thread.process)
        return child.pid

    def sys_snapshot_drop(self, thread, handle: int) -> int:
        """Release a snapshot's frames; existing children are unaffected."""
        self.drop_snapshot(handle)
        return 0

    # ------------------------------------------------------------------
    # exit and wait
    # ------------------------------------------------------------------

    def sys_exit(self, thread, status: int = 0):
        """Terminate the calling process with ``status``."""
        self.exit_process(thread.process, status)
        return EXITED

    def sys_waitpid(self, thread, pid: int = -1, *, nohang: bool = False):
        """Reap one zombie child; returns ``(pid, status)``.

        ``pid=-1`` waits for any child.  Blocks until a matching child
        has exited; with ``nohang=True`` (WNOHANG) returns ``None``
        instead of blocking.  ``ECHILD`` if there is nothing to wait
        for.
        """
        proc = thread.process
        matching = [c for c in proc.children
                    if pid in (-1, c)]
        if not matching:
            raise SimOSError("ECHILD", f"pid {proc.pid} has no child {pid}")
        for child_pid in matching:
            child = self.find_process(child_pid)
            if child is not None and child.state == "zombie":
                child.state = "reaped"
                proc.children.remove(child_pid)
                return (child.pid, child.exit_status)
        if nohang:
            return None

        def some_child_exited():
            return any(
                (c := self.find_process(p)) is not None and c.state == "zombie"
                for p in proc.children if pid in (-1, p))

        raise Park(some_child_exited, f"waitpid({pid})")

    # ------------------------------------------------------------------
    # identity and misc
    # ------------------------------------------------------------------

    def sys_getpid(self, thread) -> int:
        """The calling process's pid."""
        return thread.process.pid

    def sys_getppid(self, thread) -> int:
        """The parent's pid."""
        return thread.process.ppid

    def sys_gettid(self, thread) -> int:
        """The calling thread's tid."""
        return thread.tid

    def sys_thread_count(self, thread) -> int:
        """Live threads in the calling process (introspection)."""
        return len(thread.process.live_threads())

    def sys_sched_yield(self, thread) -> int:
        """Give up the CPU (the round-robin makes this mostly symbolic)."""
        return 0

    def sys_clock(self, thread) -> float:
        """The kernel's virtual clock, in nanoseconds."""
        return self.now_ns

    def sys_compute(self, thread, ns: float) -> int:
        """Model ``ns`` nanoseconds of user-mode CPU burn."""
        if ns < 0:
            raise SimOSError("EINVAL", "negative compute time")
        self.charge_fixed(ns)
        return 0
