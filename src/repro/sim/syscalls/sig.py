"""Signal syscalls: sigaction, sigprocmask, kill."""

from __future__ import annotations

from ...errors import SimOSError
from .base import KernelFacet


class SignalSyscalls(KernelFacet):
    """Signal management handlers."""

    def sys_sigaction(self, thread, signum: int, disposition):
        """Install a disposition; returns the previous one.

        Dispositions are ``"default"``, ``"ignore"``, or a callable
        invoked as ``handler(signum)`` at delivery.
        """
        return thread.process.signals.set_handler(signum, disposition)

    def sys_sigprocmask(self, thread, how: str, signums) -> int:
        """Block or unblock signals (``how`` is ``"block"``/``"unblock"``)."""
        signals = thread.process.signals
        if how == "block":
            signals.block(set(signums))
        elif how == "unblock":
            signals.unblock(set(signums))
        else:
            raise SimOSError("EINVAL", f"bad sigprocmask how={how!r}")
        return 0

    def sys_kill(self, thread, pid: int, signum: int) -> int:
        """Post a signal to a process."""
        target = self.find_process(pid)
        if target is None or not target.alive:
            raise SimOSError("ESRCH", f"no such process {pid}")
        target.signals.post(signum)
        return 0

    def sys_sigpending(self, thread):
        """The calling process's pending set (introspection)."""
        return set(thread.process.signals.pending)
