"""Syscall handler mixins composing :class:`repro.sim.kernel.Kernel`."""

from .base import EXEC_TRANSFER, EXITED, Park, RETRY
from .emul import EmulationSyscalls
from .files import FileSyscalls
from .memory import MemorySyscalls
from .procs import ProcessSyscalls
from .sig import SignalSyscalls
from .sync import SyncSyscalls
from .xproc import CrossProcessSyscalls

__all__ = [
    "CrossProcessSyscalls", "EXEC_TRANSFER", "EXITED", "EmulationSyscalls",
    "FileSyscalls",
    "MemorySyscalls", "Park", "ProcessSyscalls", "RETRY", "SignalSyscalls",
    "SyncSyscalls",
]
