"""File and pipe syscalls: open, read, write, dup, pipe, cloexec."""

from __future__ import annotations

from ...errors import SimOSError
from ..pipes import Pipe, WouldBlock
from ..signals import SIGPIPE
from .base import KernelFacet, Park


class FileSyscalls(KernelFacet):
    """open/close/read/write/seek/dup/dup2/pipe/cloexec handlers."""

    def sys_open(self, thread, path: str, mode: str = "r", *,
                 cloexec: bool = False) -> int:
        """Open ``path``; returns a descriptor.

        ``cloexec`` models ``O_CLOEXEC`` — the *atomic* form the paper
        notes had to be retrofitted into every fd-creating call because
        fork+exec races with concurrent threads.
        """
        ofd = self.vfs.open(path, mode)
        return thread.process.fdtable.install(ofd, cloexec=cloexec)

    def sys_close(self, thread, fd: int) -> int:
        """Close one descriptor."""
        thread.process.fdtable.close(fd)
        return 0

    def sys_read(self, thread, fd: int, nbytes: int) -> bytes:
        """Read up to ``nbytes``; blocks on an empty pipe with writers."""
        ofd = thread.process.fdtable.ofd(fd)
        try:
            return ofd.read(nbytes)
        except WouldBlock:
            pipe = ofd.inode.pipe
            raise Park(lambda: pipe.readable_now,
                       f"read(fd={fd}) on empty pipe") from None

    def sys_write(self, thread, fd: int, data: bytes) -> int:
        """Write ``data``; blocks on a full pipe; EPIPE raises SIGPIPE."""
        ofd = thread.process.fdtable.ofd(fd)
        try:
            return ofd.write(data)
        except WouldBlock:
            pipe = ofd.inode.pipe
            raise Park(lambda: pipe.writable_now,
                       f"write(fd={fd}) on full pipe") from None
        except SimOSError as err:
            if err.errno_name == "EPIPE":
                thread.process.signals.post(SIGPIPE)
            raise

    def sys_seek(self, thread, fd: int, offset: int, whence: int = 0) -> int:
        """Reposition the (shared!) file offset behind ``fd``."""
        return thread.process.fdtable.ofd(fd).seek(offset, whence)

    def sys_dup(self, thread, fd: int) -> int:
        """Duplicate a descriptor onto the lowest free slot."""
        return thread.process.fdtable.dup(fd)

    def sys_dup2(self, thread, old_fd: int, new_fd: int) -> int:
        """Alias ``old_fd`` at ``new_fd`` (closing any prior occupant)."""
        return thread.process.fdtable.dup2(old_fd, new_fd)

    def sys_set_cloexec(self, thread, fd: int, value: bool = True) -> int:
        """Set/clear FD_CLOEXEC — the non-atomic, racy-after-the-fact way."""
        thread.process.fdtable.set_cloexec(fd, value)
        return 0

    def sys_pipe(self, thread, *, cloexec: bool = False):
        """Create a pipe; returns ``(read_fd, write_fd)``."""
        pipe = Pipe()
        read_end, write_end = pipe.make_endpoints()
        table = thread.process.fdtable
        read_fd = table.install(read_end, cloexec=cloexec)
        write_fd = table.install(write_end, cloexec=cloexec)
        return (read_fd, write_fd)

    def sys_poll(self, thread, read_fds=(), write_fds=()):
        """Block until at least one watched descriptor is ready.

        Returns ``(ready_reads, ready_writes)`` — descriptor lists.
        Regular files are always ready; pipe ends are ready per the
        pipe's buffer/EOF state.  The select/poll primitive that lets a
        single process serve many channels — the architecture the paper
        prefers over fork-per-connection.
        """
        table = thread.process.fdtable
        for fd in list(read_fds) + list(write_fds):
            table.lookup(fd)  # EBADF up front, not mid-wait

        def readiness():
            ready_reads = []
            for fd in read_fds:
                entry = table.lookup(fd)
                pipe = entry.ofd.inode.pipe
                if pipe is None or pipe.readable_now:
                    ready_reads.append(fd)
            ready_writes = []
            for fd in write_fds:
                entry = table.lookup(fd)
                pipe = entry.ofd.inode.pipe
                if pipe is None or pipe.writable_now:
                    ready_writes.append(fd)
            return ready_reads, ready_writes

        ready_reads, ready_writes = readiness()
        if ready_reads or ready_writes:
            return (ready_reads, ready_writes)
        raise Park(lambda: any(readiness()),
                   f"poll(read={list(read_fds)}, write={list(write_fds)})")

    def sys_fd_count(self, thread) -> int:
        """How many descriptors the process holds (introspection)."""
        return len(thread.process.fdtable)

    def sys_fd_list(self, thread):
        """The open descriptor numbers (introspection)."""
        return thread.process.fdtable.fds()
