"""Shared plumbing for the syscall layer.

Syscall handlers are methods named ``sys_<name>`` on the kernel, mixed in
from the modules of this package.  They communicate three non-value
outcomes to the trampoline through the types below:

* :class:`Park` — the call cannot progress; block the thread until the
  predicate holds, then either retry the call or deliver a fixed result.
* :class:`ExecTransfer` — the calling thread's program image was
  replaced; do not resume the old generator.
* :class:`Exited` — the calling thread (or its whole process) is gone.
"""

from __future__ import annotations

from typing import Callable

#: Marker: "retry the original call" (vs. a fixed wake-up result).
RETRY = object()


class Park(Exception):
    """Raised by a handler to block the calling thread.

    Attributes:
        predicate: zero-argument callable; the scheduler re-checks it
            each round and wakes the thread when it returns true.
        reason: human-readable blocking reason (shows up in deadlock
            reports — the fork-with-threads experiment reads these).
        result: value to deliver on wake, or :data:`RETRY` to re-execute
            the original syscall instead.
    """

    def __init__(self, predicate: Callable[[], bool], reason: str,
                 result=RETRY):
        super().__init__(reason)
        self.predicate = predicate
        self.reason = reason
        self.result = result


class ExecTransfer:
    """Handler result: the thread now runs a different program image."""

    __slots__ = ()


class Exited:
    """Handler result: the calling thread finished (exit/fatal signal)."""

    __slots__ = ()


EXEC_TRANSFER = ExecTransfer()
EXITED = Exited()


class KernelFacet:
    """Base for syscall mixins; documents the kernel surface they use.

    Mixins assume the kernel provides: ``config``, ``cost``, ``counters``,
    ``vfs``, ``processes``, ``programs``, ``rng``, ``charge_fixed()``,
    ``make_address_space()``, ``new_pid()``, ``attach_thread()``,
    ``make_proxy()``, ``exit_process()``, ``find_process()``.
    """

    __slots__ = ()
