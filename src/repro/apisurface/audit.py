"""Audit queries over the POSIX fork/exec catalog (experiment T1)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .catalog import CATALOG, StateEntry


def entries(category: Optional[str] = None) -> List[StateEntry]:
    """Catalog entries, optionally restricted to one category."""
    if category is None:
        return list(CATALOG)
    return [e for e in CATALOG if e.category == category]


def categories() -> List[str]:
    """Every category, in catalog order, deduplicated."""
    seen: List[str] = []
    for entry in CATALOG:
        if entry.category not in seen:
            seen.append(entry.category)
    return seen


def fork_special_cases() -> List[StateEntry]:
    """Entries where fork deviates from 'the child is a copy'.

    ``len()`` of this is the paper's headline count (~25).
    """
    return [e for e in CATALOG if e.fork_special]


def exec_special_cases() -> List[StateEntry]:
    """Entries where exec deviates from 'a fresh image replaces all'."""
    return [e for e in CATALOG if e.exec_special]


def hazards() -> List[StateEntry]:
    """Entries carrying an explicit hazard note."""
    return [e for e in CATALOG if e.hazard]


def simulator_coverage() -> Tuple[List[StateEntry], List[StateEntry]]:
    """``(implemented, not_implemented)`` against :mod:`repro.sim`."""
    done = [e for e in CATALOG if e.sim_module]
    todo = [e for e in CATALOG if not e.sim_module]
    return done, todo


def summary() -> Dict[str, int]:
    """Headline numbers for the T1 table."""
    done, _ = simulator_coverage()
    return {
        "total_state_items": len(CATALOG),
        "fork_special_cases": len(fork_special_cases()),
        "exec_special_cases": len(exec_special_cases()),
        "documented_hazards": len(hazards()),
        "simulated_items": len(done),
    }


def special_case_table() -> List[Tuple[str, str, str]]:
    """``(category, name, fork_behavior)`` rows for every special case."""
    return [(e.category, e.name, e.fork_behavior)
            for e in fork_special_cases()]


def render_table(width: int = 78) -> str:
    """The T1 listing as fixed-width text."""
    lines = [
        f"POSIX fork() special cases: {len(fork_special_cases())} "
        f"(of {len(CATALOG)} catalogued state items)",
        "-" * width,
    ]
    for category in categories():
        specials = [e for e in entries(category) if e.fork_special]
        if not specials:
            continue
        lines.append(f"{category} ({len(specials)}):")
        for entry in specials:
            lines.append(f"  {entry.name}: {entry.fork_behavior}")
    counts = summary()
    lines.append("-" * width)
    lines.append(
        f"exec special cases: {counts['exec_special_cases']}; "
        f"documented hazards: {counts['documented_hazards']}; "
        f"implemented in repro.sim: {counts['simulated_items']}")
    return "\n".join(lines)
