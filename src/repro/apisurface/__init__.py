"""The POSIX fork/exec semantics catalog and its audit queries.

Reproduces the paper's "~25 special cases in POSIX fork" claim as a
regenerable count over encoded spec text (experiment T1).
"""

from .audit import (categories, entries, exec_special_cases,
                    fork_special_cases, hazards, render_table,
                    simulator_coverage, special_case_table, summary)
from .catalog import CATALOG, StateEntry

__all__ = [
    "CATALOG", "StateEntry", "categories", "entries",
    "exec_special_cases", "fork_special_cases", "hazards", "render_table",
    "simulator_coverage", "special_case_table", "summary",
]
