"""A machine-readable catalog of POSIX fork/exec state semantics.

The paper's "fork is no longer simple" argument rests on a count: the
POSIX.1 specification of ``fork()`` has accumulated roughly **25 special
cases** in how the parent's state is (or pointedly is not) copied into
the child — file locks, timers, asynchronous I/O, message queues,
tracing, and so on — plus a parallel list of rules at ``exec``.

This module encodes those rules as data, one :class:`StateEntry` per item
of process state, so the claim is auditable rather than anecdotal:
experiment T1 regenerates the count and the listing from here.  Entries
follow POSIX.1-2017 (XSH 3, ``fork`` and ``exec`` DESCRIPTION sections);
``fork_special`` marks state that deviates from the naive "child is a
copy of the parent" story, ``exec_special`` the analogous deviations from
"a fresh image replaces everything".

``sim_module`` records which part of :mod:`repro.sim` implements the
behaviour, making the catalog double as the simulator's conformance
checklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StateEntry:
    """One item of process state and its fork/exec treatment."""

    name: str
    category: str
    fork_behavior: str
    fork_special: bool
    exec_behavior: str
    exec_special: bool
    hazard: str = ""
    sim_module: Optional[str] = None


CATALOG: Tuple[StateEntry, ...] = (
    # ----------------------------------------------------------------- files
    StateEntry(
        name="file descriptors",
        category="files",
        fork_behavior="each descriptor duplicated; both refer to the SAME "
                      "open file description (offset and status shared)",
        fork_special=True,
        exec_behavior="remain open unless FD_CLOEXEC is set",
        exec_special=True,
        hazard="shared offsets interleave I/O; descriptors leak into "
               "exec'd programs by default",
        sim_module="repro.sim.fdtable"),
    StateEntry(
        name="close-on-exec flags",
        category="files",
        fork_behavior="copied per descriptor",
        fork_special=False,
        exec_behavior="flagged descriptors are closed",
        exec_special=True,
        sim_module="repro.sim.fdtable"),
    StateEntry(
        name="open directory streams",
        category="files",
        fork_behavior="copied; may share stream positioning with the "
                      "parent (unspecified)",
        fork_special=True,
        exec_behavior="closed",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="advisory record locks (fcntl F_SETLK)",
        category="files",
        fork_behavior="NOT inherited: the child holds no locks",
        fork_special=True,
        exec_behavior="preserved across exec",
        exec_special=False,
        hazard="a child believing it holds the parent's lock corrupts "
               "the locked file",
        sim_module=None),
    StateEntry(
        name="asynchronous I/O operations (aio_*)",
        category="files",
        fork_behavior="NOT inherited: outstanding operations belong to "
                      "the parent only",
        fork_special=True,
        exec_behavior="unspecified whether they are cancelled",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="message queue descriptors (mq_*)",
        category="files",
        fork_behavior="copied, referring to the same open queue "
                      "descriptions",
        fork_special=True,
        exec_behavior="closed",
        exec_special=True,
        sim_module=None),

    # ---------------------------------------------------------------- memory
    StateEntry(
        name="address space / MAP_PRIVATE mappings",
        category="memory",
        fork_behavior="logically copied (copy-on-write everywhere real)",
        fork_special=False,
        exec_behavior="entire address space replaced by the new image",
        exec_special=False,
        sim_module="repro.sim.addrspace"),
    StateEntry(
        name="MAP_SHARED mappings",
        category="memory",
        fork_behavior="NOT snapshotted: parent and child keep sharing "
                      "the same pages",
        fork_special=True,
        exec_behavior="unmapped",
        exec_special=False,
        sim_module="repro.sim.shm"),
    StateEntry(
        name="memory locks (mlock/mlockall)",
        category="memory",
        fork_behavior="NOT inherited",
        fork_special=True,
        exec_behavior="released",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="address-space layout (ASLR bases)",
        category="memory",
        fork_behavior="identical to the parent: no fresh randomisation",
        fork_special=True,
        exec_behavior="freshly randomised",
        exec_special=False,
        hazard="the paper's Blind-ROP point: forked workers share the "
               "parent's layout, so crash-probing one reveals all",
        sim_module="repro.sim.addrspace"),

    # --------------------------------------------------------------- threads
    StateEntry(
        name="threads",
        category="threads",
        fork_behavior="ONLY the calling thread is replicated; all others "
                      "vanish mid-operation",
        fork_special=True,
        exec_behavior="all threads other than the caller are destroyed",
        exec_special=True,
        hazard="locks held by vanished threads are held forever in the "
               "child",
        sim_module="repro.sim.process"),
    StateEntry(
        name="mutex/condition-variable memory",
        category="threads",
        fork_behavior="copied as ordinary memory, INCLUDING held state",
        fork_special=True,
        exec_behavior="gone with the old image",
        exec_special=False,
        hazard="the fork-with-threads deadlock (experiment T4)",
        sim_module="repro.sim.process"),
    StateEntry(
        name="robust mutex list",
        category="threads",
        fork_behavior="NOT inherited by the child",
        fork_special=True,
        exec_behavior="gone with the old image",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="thread-specific data (pthread keys)",
        category="threads",
        fork_behavior="the surviving thread keeps its values; no "
                      "destructors run for vanished threads",
        fork_special=True,
        exec_behavior="gone with the old image",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="pthread_atfork handlers",
        category="threads",
        fork_behavior="prepare/parent/child handlers run around the fork "
                      "(the consistency band-aid)",
        fork_special=True,
        exec_behavior="gone with the old image",
        exec_special=False,
        sim_module="repro.core.atfork"),

    # --------------------------------------------------------------- signals
    StateEntry(
        name="signal dispositions",
        category="signals",
        fork_behavior="inherited (handlers point at the same code)",
        fork_special=False,
        exec_behavior="caught signals RESET to default; ignored signals "
                      "stay ignored",
        exec_special=True,
        sim_module="repro.sim.signals"),
    StateEntry(
        name="signal mask",
        category="signals",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="preserved across exec",
        exec_special=True,
        sim_module="repro.sim.signals"),
    StateEntry(
        name="pending signals",
        category="signals",
        fork_behavior="CLEARED: the child starts with an empty pending set",
        fork_special=True,
        exec_behavior="preserved across exec",
        exec_special=True,
        sim_module="repro.sim.signals"),
    StateEntry(
        name="alternate signal stack (sigaltstack)",
        category="signals",
        fork_behavior="inherited (same addresses, which COW makes distinct)",
        fork_special=False,
        exec_behavior="disabled in the new image",
        exec_special=True,
        sim_module=None),

    # ---------------------------------------------------------------- timers
    StateEntry(
        name="pending alarms (alarm)",
        category="timers",
        fork_behavior="CLEARED in the child",
        fork_special=True,
        exec_behavior="preserved across exec",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="interval timers (setitimer)",
        category="timers",
        fork_behavior="RESET in the child",
        fork_special=True,
        exec_behavior="preserved across exec",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="POSIX per-process timers (timer_create)",
        category="timers",
        fork_behavior="NOT inherited",
        fork_special=True,
        exec_behavior="deleted",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="CPU-time clocks",
        category="timers",
        fork_behavior="RESET: the child's CPU clock starts at zero",
        fork_special=True,
        exec_behavior="preserved (same process)",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="tms_* process times",
        category="timers",
        fork_behavior="RESET to zero in the child",
        fork_special=True,
        exec_behavior="preserved",
        exec_special=False,
        sim_module=None),

    # ------------------------------------------------------------------- ipc
    StateEntry(
        name="semaphore adjustments (semadj)",
        category="ipc",
        fork_behavior="CLEARED in the child",
        fork_special=True,
        exec_behavior="preserved",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="System V shared memory attachments",
        category="ipc",
        fork_behavior="inherited (attached segments remain attached)",
        fork_special=True,
        exec_behavior="detached",
        exec_special=False,
        sim_module="repro.sim.shm"),
    StateEntry(
        name="named semaphores (sem_open)",
        category="ipc",
        fork_behavior="references inherited, shared with the parent",
        fork_special=True,
        exec_behavior="closed",
        exec_special=False,
        sim_module=None),

    # -------------------------------------------------------------- identity
    StateEntry(
        name="process ID / parent process ID",
        category="identity",
        fork_behavior="child gets a unique pid; ppid is the parent",
        fork_special=True,
        exec_behavior="unchanged",
        exec_special=False,
        sim_module="repro.sim.process"),
    StateEntry(
        name="process group, session, controlling terminal",
        category="identity",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="unchanged",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="real/effective user and group IDs",
        category="identity",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="unchanged unless set-user-ID/set-group-ID bits "
                      "apply",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="working directory, root directory, umask",
        category="identity",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="unchanged",
        exec_special=False,
        sim_module="repro.sim.process"),

    # ------------------------------------------------------------ accounting
    StateEntry(
        name="resource utilisation (getrusage)",
        category="accounting",
        fork_behavior="RESET to zero in the child",
        fork_special=True,
        exec_behavior="preserved",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="resource limits (setrlimit)",
        category="accounting",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="preserved",
        exec_special=False,
        sim_module=None),
    StateEntry(
        name="nice value / scheduling attributes",
        category="accounting",
        fork_behavior="inherited (per-policy details unspecified)",
        fork_special=True,
        exec_behavior="preserved",
        exec_special=False,
        sim_module=None),

    # ----------------------------------------------------------------- debug
    StateEntry(
        name="tracing state (ptrace/trace)",
        category="debug",
        fork_behavior="NOT inherited: the child is not being traced",
        fork_special=True,
        exec_behavior="implementation-defined (may detach or stop)",
        exec_special=True,
        sim_module=None),
    StateEntry(
        name="floating-point environment",
        category="debug",
        fork_behavior="inherited",
        fork_special=False,
        exec_behavior="reset to default",
        exec_special=True,
        sim_module=None),
)
