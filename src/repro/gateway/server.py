"""The spawn gateway daemon: many tenants, one warm spawn service.

:class:`GatewayServer` listens on a Unix socket (and optionally TCP),
speaks the length-prefixed JSON protocol of
:mod:`repro.gateway.protocol`, and maps every admitted request onto the
library's strategy ladder — template zygotes, the forkserver pool, a
single forkserver, or direct ``posix_spawn`` — through each tenant's
:class:`~repro.core.policy.SpawnPolicy`.

The interesting part is what happens *before* a request reaches the
ladder.  Admission control runs per tenant, in order:

1. **auth** — the connection's ``hello`` must present the tenant's
   token (compared in constant time) before any other op is served;
2. **drain** — a draining gateway refuses new spawns with
   :class:`~repro.errors.Overloaded` and a Retry-After hint while
   completing everything already admitted;
3. **rate** — a token bucket (``rate``/``burst``) answers bursts above
   the tenant's contract with :class:`~repro.errors.RateLimited` and
   the exact seconds until a token exists;
4. **queue bound** — each tenant owns a bounded queue; past
   ``max_queue`` the gateway *sheds* (:class:`Overloaded`) instead of
   buffering without bound — the load-shedding half of backpressure.

Admitted work is scheduled by **weighted fair queueing** (start-time
fair queueing over per-tenant virtual clocks): each dispatch advances
its tenant's clock by ``cost/weight``, and the scheduler always serves
the backlogged tenant with the smallest clock — so a tenant flooding
its queue cannot starve the others, and a weight-2 tenant drains twice
as fast as a weight-1 tenant under contention.

Dispatch itself runs on a bounded thread executor (the spawn ladder is
blocking I/O); ``max_inflight`` is the daemon-wide concurrency bound.
Everything is observable through :mod:`repro.obs`: queue-depth gauges,
shed/rate-limit counters, and per-tenant launch-latency histograms.

The event loop runs in a dedicated thread; ``start()``/``stop()`` are
ordinary blocking calls, which is what lets the ``gateway`` strategy
embed a daemon inside the client process.  Socket I/O uses raw
non-blocking sockets with ``loop.add_reader`` — not asyncio streams —
because stdio descriptors arrive as SCM_RIGHTS ancillary data, which
only ``recvmsg`` on the real socket can see.
"""

from __future__ import annotations

import array
import asyncio
import hmac
import json
import os
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional

from ..core.batch import BatchRequest
from ..core.policy import (DEFAULT_FALLBACK, SpawnPolicy, breaker_for)
from ..core.spawn import ProcessBuilder
from ..errors import (AuthError, GatewayError, GatewayProtocolError,
                      Overloaded, RateLimited, SpawnError)
from ..faults import FAULTS
from ..obs import TELEMETRY
from .config import GatewayConfig, TenantConfig, TokenBucket
from .protocol import (FrameDecoder, PROTOCOL_VERSION, check_request,
                       encode_error, encode_frame)

#: Longest lease (admission credits) a tenant may hold, seconds.
MAX_LEASE_TTL = 60.0

#: How much ancillary (fd-grant) space one recvmsg is willing to parse.
_FD_BUFFER = socket.CMSG_SPACE(253 * array.array("i").itemsize)


class _Connection:
    """One client connection: socket, decoder, granted fds, identity."""

    __slots__ = ("sock", "fd", "is_unix", "decoder", "pending_fds",
                 "tenant", "outbuf", "writing", "closed", "peer",
                 "close_after_flush")

    def __init__(self, sock: socket.socket, is_unix: bool, peer: str):
        self.sock = sock
        self.fd = sock.fileno()
        self.is_unix = is_unix
        self.decoder = FrameDecoder()
        self.pending_fds: List[int] = []
        self.tenant: Optional[str] = None
        self.outbuf = bytearray()
        self.writing = False
        self.closed = False
        self.close_after_flush = False
        self.peer = peer


class _Job:
    """One admitted unit of work, waiting in its tenant's queue."""

    __slots__ = ("conn", "rid", "kind", "payload", "fds", "cost",
                 "tenant", "t_enqueued")

    def __init__(self, conn: _Connection, rid: Optional[int], kind: str,
                 payload: dict, fds: List[int], cost: int, tenant: str):
        self.conn = conn
        self.rid = rid
        self.kind = kind
        self.payload = payload
        self.fds = fds
        self.cost = cost
        self.tenant = tenant
        self.t_enqueued = time.monotonic()


class _TenantState:
    """Everything the gateway tracks about one tenant at runtime."""

    __slots__ = ("config", "bucket", "queue", "vtime", "inflight",
                 "children", "policy", "lease_credits", "lease_expiry",
                 "counters", "waiting")

    def __init__(self, config: TenantConfig):
        self.config = config
        self.bucket: Optional[TokenBucket] = None
        if config.rate is not None:
            self.bucket = TokenBucket(
                config.rate, config.burst if config.burst else config.rate)
        self.queue: Deque[_Job] = deque()
        self.vtime = 0.0
        self.inflight = 0
        self.children: Dict[int, object] = {}
        self.policy = config.policy or SpawnPolicy(
            deadline=10.0, retries=1, fallback=DEFAULT_FALLBACK)
        self.lease_credits = 0
        self.lease_expiry = 0.0
        self.waiting = 0  # concurrent blocking waits (loop thread only)
        self.counters = {"admitted": 0, "completed": 0, "failed": 0,
                         "shed": 0, "rate_limited": 0}

    def take_lease_credit(self, now: float) -> bool:
        if self.lease_credits > 0 and now < self.lease_expiry:
            self.lease_credits -= 1
            return True
        return False


class GatewayServer:
    """The multi-tenant spawn daemon (see the module docstring).

    Lifecycle: ``start()`` binds the listeners and boots the event-loop
    thread; ``drain()`` flips the daemon into refuse-new/finish-admitted
    mode; ``stop()`` drains (bounded by ``config.drain_grace``), closes
    every connection, and joins the loop.  Usable as a context manager.
    """

    def __init__(self, config: GatewayConfig):
        self.config = config
        self._tenants = {name: _TenantState(cfg)
                         for name, cfg in config.tenants.items()}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._listeners: List[socket.socket] = []
        self._connections: Dict[int, _Connection] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._inflight = 0
        self._vclock = 0.0
        self._wake: Optional[asyncio.Event] = None
        self._scheduler_task = None
        self._draining = False
        self._drained = threading.Event()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._closing = False
        self._unix_path: Optional[str] = None
        self._tcp_port: Optional[int] = None
        self._internal_errors = 0
        self._boot_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def unix_path(self) -> Optional[str]:
        """The bound Unix-socket path (``None`` when not listening)."""
        return self._unix_path

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (resolved even when configured as 0)."""
        return self._tcp_port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def running(self) -> bool:
        """Whether the event loop is (still) serving.

        False before ``start()``, after ``stop()``, and — the case a
        supervisor polls for — after the loop died on its own (a crash
        fault, an unhandled loop error)."""
        return self._thread is not None and not self._stopped.is_set()

    def start(self) -> "GatewayServer":
        """Bind the listeners and boot the loop thread (idempotent,
        and restartable: a stopped server can ``start()`` again)."""
        if self._thread is not None:
            return self
        # A restart after stop(): the lifecycle latches still reflect
        # the old loop.  Reset them so this start() waits on the *new*
        # loop and drain()/stop() don't short-circuit on stale events.
        self._started.clear()
        self._stopped.clear()
        self._drained.clear()
        self._draining = False
        self._closing = False
        self._boot_error = None
        self._bind_listeners()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads
            or self.config.max_inflight,
            thread_name_prefix="gateway-spawn")
        self._thread = threading.Thread(target=self._run_loop,
                                        name="gateway-loop", daemon=True)
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._boot_error is not None:
            error, self._boot_error = self._boot_error, None
            self.stop()
            raise GatewayError(f"gateway failed to start: {error}")
        if not self._started.is_set():
            self.stop()
            raise GatewayError("gateway event loop failed to start")
        return self

    def _bind_listeners(self) -> None:
        if self.config.unix_path is not None:
            path = self.config.unix_path
            try:
                if os.path.exists(path):
                    os.unlink(path)  # stale socket from a dead daemon
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.bind(path)
            except OSError as exc:
                raise GatewayError(
                    f"cannot listen on unix socket {path!r}: {exc}") from exc
            sock.listen(self.config.accept_backlog)
            sock.setblocking(False)
            self._listeners.append(sock)
            self._unix_path = path
        if self.config.tcp_port is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind((self.config.tcp_host, self.config.tcp_port))
            except OSError as exc:
                sock.close()
                raise GatewayError(
                    f"cannot listen on {self.config.tcp_host}:"
                    f"{self.config.tcp_port}: {exc}") from exc
            sock.listen(self.config.accept_backlog)
            sock.setblocking(False)
            self._listeners.append(sock)
            self._tcp_port = sock.getsockname()[1]

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._wake = asyncio.Event()
            for sock in self._listeners:
                is_unix = sock.family == socket.AF_UNIX
                loop.add_reader(sock.fileno(), self._on_accept, sock,
                                is_unix)
            self._scheduler_task = loop.create_task(self._scheduler())
            self._started.set()
            loop.run_forever()
        except BaseException as exc:  # boot failed; unblock start()
            self._boot_error = exc
            self._started.set()
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
            except Exception:
                pass
            loop.close()
            self._stopped.set()

    def drain(self, *_signal_args) -> None:
        """Refuse new spawns; finish everything already admitted.

        Thread- and signal-safe: this is the SIGTERM handler.  Queued
        and in-flight work completes; new ``spawn``/``spawn_batch``
        requests get :class:`Overloaded` with a Retry-After hint.
        """
        loop = self._loop
        if loop is None or self._stopped.is_set():
            self._draining = True
            self._drained.set()
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:  # loop died between the check and the call
            self._draining = True
            self._drained.set()

    def resume(self) -> None:
        """Leave drain mode: admit new work again.

        The un-drain half of :meth:`drain`.  A no-op while the server
        is actually stopping (``stop()`` owns the drain latch then).
        """
        loop = self._loop
        if loop is None or self._stopped.is_set():
            return
        try:
            loop.call_soon_threadsafe(self._end_drain)
        except RuntimeError:
            pass

    def _begin_drain(self) -> None:
        if not self._draining:
            self._draining = True
            TELEMETRY.event("gateway_drain")
        self._check_drained()

    def _end_drain(self) -> None:
        if self._draining and not self._closing:
            self._draining = False
            self._drained.clear()
            TELEMETRY.event("gateway_resume")

    def _check_drained(self) -> None:
        if not self._draining:
            return
        if self._inflight == 0 and not any(
                t.queue for t in self._tenants.values()):
            self._drained.set()

    def stop(self) -> None:
        """Drain (bounded), close everything, join the loop (idempotent)."""
        self.drain()
        self._drained.wait(timeout=self.config.drain_grace)
        self._closing = True
        loop = self._loop
        if loop is not None and not self._stopped.is_set():
            try:
                loop.call_soon_threadsafe(self._shutdown_in_loop)
            except RuntimeError:
                pass  # the loop crashed or closed on its own
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        for sock in self._listeners:
            try:
                sock.close()
            except OSError:
                pass
        self._listeners = []
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        # Reap whatever the tenants still hold so no zombie outlives us.
        for tenant in self._tenants.values():
            for child in list(tenant.children.values()):
                try:
                    child.poll()
                except Exception:
                    pass
            tenant.children.clear()
        self._loop = None

    def _shutdown_in_loop(self) -> None:
        for sock in self._listeners:
            try:
                self._loop.remove_reader(sock.fileno())
            except Exception:
                pass
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        # Fail whatever is still queued (grace expired before it ran).
        for tenant in self._tenants.values():
            while tenant.queue:
                job = tenant.queue.popleft()
                self._close_job_fds(job)
        self._loop.stop()

    def _crash_in_loop(self) -> None:
        """Die abruptly, the way a SIGKILLed daemon would (fault hook).

        No drain, no goodbye frames: connections and queued work are
        dropped on the floor and the loop stops.  Unlike :meth:`stop`,
        the tenants' live children are *not* reaped or cleared — a
        crash orphans them, and proving a
        :class:`~repro.gateway.supervisor.GatewaySupervisor` reconciles
        those orphans is the point of injecting one.  The drain latches
        are released so a later ``stop()`` cleans up without waiting
        out the grace period.
        """
        TELEMETRY.event("gateway_crash")
        self._closing = True
        self._draining = True
        self._drained.set()
        self._shutdown_in_loop()

    def crash(self) -> None:
        """Crash the daemon from any thread (tests and chaos drills)."""
        loop = self._loop
        if loop is None or self._stopped.is_set():
            return
        try:
            loop.call_soon_threadsafe(self._crash_in_loop)
        except RuntimeError:
            pass
        self._stopped.wait(timeout=10.0)

    def take_orphans(self) -> Dict[int, object]:
        """Claim the children a dead daemon stranded (pid -> handle).

        A supervisor restarting a crashed server calls this *before*
        ``stop()`` (which would merely poll-and-forget them): ownership
        of every live child transfers to the caller, whose job is to
        wait on each one so nothing is left a zombie.
        """
        orphans: Dict[int, object] = {}
        for tenant in self._tenants.values():
            orphans.update(tenant.children)
            tenant.children.clear()
        return orphans

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection plumbing ---------------------------------------------

    def _on_accept(self, listener: socket.socket, is_unix: bool) -> None:
        try:
            sock, addr = listener.accept()
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            return
        sock.setblocking(False)
        fault = FAULTS.fire("gateway.accept")
        if fault is not None and fault.kind == "refuse_accept":
            # The daemon that answers the TCP/unix handshake but hangs
            # up before speaking: the client sees an immediate EOF.
            try:
                sock.close()
            except OSError:
                pass
            return
        peer = self._unix_path if is_unix else f"{addr[0]}:{addr[1]}"
        conn = _Connection(sock, is_unix, str(peer))
        self._connections[conn.fd] = conn
        self._loop.add_reader(conn.fd, self._on_readable, conn)
        TELEMETRY.count("gateway_connections")

    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.pop(conn.fd, None)
        try:
            self._loop.remove_reader(conn.fd)
        except Exception:
            pass
        if conn.writing:
            try:
                self._loop.remove_writer(conn.fd)
            except Exception:
                pass
        for fd in conn.pending_fds:
            try:
                os.close(fd)
            except OSError:
                pass
        conn.pending_fds = []
        try:
            conn.sock.close()
        except OSError:
            pass

    def _on_readable(self, conn: _Connection) -> None:
        if conn.closed:
            return
        try:
            if conn.is_unix:
                data, ancdata, _flags, _addr = conn.sock.recvmsg(
                    65536, _FD_BUFFER)
                for level, ctype, payload in ancdata:
                    if (level == socket.SOL_SOCKET
                            and ctype == socket.SCM_RIGHTS):
                        fds = array.array("i")
                        fds.frombytes(
                            payload[:len(payload)
                                    - len(payload) % fds.itemsize])
                        conn.pending_fds.extend(fds)
            else:
                data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_connection(conn)
            return
        if not data:
            self._close_connection(conn)
            return
        try:
            frames = conn.decoder.feed(data)
        except GatewayProtocolError as exc:
            # The stream cannot be re-aligned: answer, flush, hang up.
            self._send(conn, encode_error(exc))
            conn.close_after_flush = True
            self._flush_or_close(conn)
            return
        for frame in frames:
            self._handle_frame(conn, frame)
            if conn.closed or conn.close_after_flush:
                break

    def _send(self, conn: _Connection, obj: dict) -> None:
        if conn.closed:
            return
        fault = FAULTS.fire("gateway.reply", tenant=conn.tenant)
        if fault is not None:
            if fault.kind == "drop_reply":
                # The reply evaporates; the client's own deadline (and
                # its retry of retryable ops) is what must save it.
                return
            if fault.kind == "garbage_reply":
                # A length prefix that checks out, a body that does not:
                # the client's decoder must poison and surface a typed
                # protocol error, never hang or crash the reader.
                body = b"\xfe\xedgarbage\xff"
                conn.outbuf += len(body).to_bytes(4, "big") + body
                self._flush_or_close(conn)
                return
        try:
            conn.outbuf += encode_frame(obj)
        except GatewayError:
            # A reply too large to frame: report it in a frame that fits.
            conn.outbuf += encode_frame(encode_error(
                GatewayProtocolError("reply exceeded the frame limit"),
                obj.get("id")))
        self._flush_or_close(conn)

    def _flush_or_close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        if conn.outbuf:
            try:
                sent = conn.sock.send(conn.outbuf)
                del conn.outbuf[:sent]
            except (BlockingIOError, InterruptedError):
                pass
            except OSError:
                self._close_connection(conn)
                return
        if conn.outbuf and not conn.writing:
            conn.writing = True
            self._loop.add_writer(conn.fd, self._on_writable, conn)
        elif not conn.outbuf:
            if conn.writing:
                conn.writing = False
                try:
                    self._loop.remove_writer(conn.fd)
                except Exception:
                    pass
            if conn.close_after_flush:
                self._close_connection(conn)

    def _on_writable(self, conn: _Connection) -> None:
        self._flush_or_close(conn)

    # -- request handling ------------------------------------------------

    def _handle_frame(self, conn: _Connection, frame: dict) -> None:
        """One request frame, end to end.  MUST NOT raise: every error
        becomes a typed error reply (that invariant is what 'zero
        unhandled server exceptions' means in the t8 gate)."""
        rid: Optional[int] = None
        fault = FAULTS.fire("gateway.daemon", tenant=conn.tenant)
        if fault is not None and fault.kind == "kill_daemon":
            # The mid-request daemon crash: every connection, queued job
            # and listener dies right now, no drain, no goodbye — and
            # the children the tenants hold are orphaned for a
            # supervisor to reconcile.  The request being handled never
            # gets an answer, exactly like a real SIGKILL.
            self._loop.call_soon(self._crash_in_loop)
            return
        try:
            op, rid = check_request(frame)
            if op == "hello":
                self._op_hello(conn, rid, frame)
            elif op == "ping":
                # Pre-auth on purpose: the liveness probe a supervisor
                # (which holds no tenant token) health-checks with.
                # The pong must leak nothing to an unauthenticated TCP
                # peer, so the daemon's pid travels only over Unix
                # sockets (where the peer is already on the box).
                pong = {"id": rid, "pong": True,
                        "version": PROTOCOL_VERSION}
                if conn.is_unix:
                    pong["pid"] = os.getpid()
                self._send(conn, pong)
            elif conn.tenant is None:
                raise AuthError("say hello first (tenant + token)")
            elif op == "spawn":
                self._op_spawn(conn, rid, frame)
            elif op == "spawn_batch":
                self._op_spawn_batch(conn, rid, frame)
            elif op == "lease":
                self._op_lease(conn, rid, frame)
            elif op == "wait":
                self._op_wait(conn, rid, frame)
            elif op == "stats":
                self._send(conn, {"id": rid, "stats": self.stats()})
            elif op == "drain":
                self._op_drain(conn, rid, frame)
        except GatewayError as exc:
            self._send(conn, encode_error(exc, rid))
            if isinstance(exc, AuthError) and conn.tenant is None:
                # A failed handshake hangs up; an authenticated tenant
                # denied a privileged op keeps its connection.
                conn.close_after_flush = True
            elif conn.pending_fds:
                # fds arrived with a request the handler never claimed
                # them for.  The FIFO grant<->request association is
                # lost, so drop the connection (closing the stranded
                # fds) rather than wire them into a later request's
                # child — same fatality as a framing error.
                conn.close_after_flush = True
            if conn.close_after_flush:
                self._flush_or_close(conn)
        except Exception as exc:  # the backstop: never kill the loop
            self._internal_errors += 1
            TELEMETRY.count("gateway_internal_errors")
            self._send(conn, encode_error(
                GatewayError(f"internal error: {exc}"), rid))

    def _op_hello(self, conn: _Connection, rid: Optional[int],
                  frame: dict) -> None:
        name = frame.get("tenant")
        token = frame.get("token")
        tenant = self._tenants.get(name) if isinstance(name, str) else None
        if (tenant is None or not isinstance(token, str)
                or not hmac.compare_digest(
                    token.encode(), tenant.config.token.encode())):
            TELEMETRY.count("gateway_auth_failures")
            raise AuthError("unknown tenant or bad token")
        conn.tenant = name
        self._send(conn, {"id": rid, "ok": True,
                          "version": PROTOCOL_VERSION, "tenant": name})

    def _op_drain(self, conn: _Connection, rid: Optional[int],
                  frame: dict) -> None:
        """Flip the daemon into (or, with ``resume``, out of) drain.

        Admin tenants only: drain denies spawn service to *every*
        tenant, so an ordinary tenant issuing it would be exactly the
        cross-tenant starvation the admission ladder exists to prevent.
        """
        tenant = self._tenants[conn.tenant]
        if not tenant.config.admin:
            TELEMETRY.count("gateway_auth_failures")
            raise AuthError(
                f"tenant {conn.tenant!r} is not an admin; the drain op "
                f"affects every tenant and needs an admin token")
        if frame.get("resume"):
            self._end_drain()
        else:
            self._begin_drain()
        self._send(conn, {"id": rid, "draining": self._draining})

    def _take_fds(self, conn: _Connection, frame: dict,
                  members: int = 1) -> List[int]:
        """Claim this request's granted stdio fds (``nfds`` per member).

        ``nfds`` must be 0 (inherit the daemon's stdio) or 3 per
        member; a grant the kernel did not actually deliver is a
        protocol error, mirroring the forkserver's lost-grant check.
        """
        nfds = frame.get("nfds", 0)
        if nfds not in (0, 3):
            raise GatewayProtocolError(f"nfds must be 0 or 3, got {nfds!r}")
        total = nfds * members
        if total == 0:
            return []
        if not conn.is_unix:
            raise GatewayProtocolError(
                "fd grants need a unix-socket connection; TCP clients "
                "must spawn with nfds=0")
        if len(conn.pending_fds) < total:
            raise GatewayProtocolError(
                f"request claims {total} granted fds but only "
                f"{len(conn.pending_fds)} arrived (lost SCM_RIGHTS grant)")
        fds, conn.pending_fds = (conn.pending_fds[:total],
                                 conn.pending_fds[total:])
        return fds

    def _admit(self, conn: _Connection, cost: int) -> _TenantState:
        """The admission ladder: drain, rate, queue bound — in order."""
        tenant = self._tenants[conn.tenant]
        now = time.monotonic()
        if self._draining:
            raise Overloaded(
                "gateway is draining; try another instance",
                retry_after=self.config.drain_grace)
        if tenant.bucket is not None and not tenant.take_lease_credit(now):
            admitted, retry_after = tenant.bucket.take()
            if not admitted:
                tenant.counters["rate_limited"] += 1
                TELEMETRY.count("gateway_rate_limited", tenant=conn.tenant)
                raise RateLimited(
                    f"tenant {conn.tenant!r} over its "
                    f"{tenant.config.rate:g} req/s contract",
                    retry_after=retry_after)
        if len(tenant.queue) + cost > tenant.config.max_queue:
            tenant.counters["shed"] += 1
            TELEMETRY.count("gateway_shed", tenant=conn.tenant)
            # The hint scales with how deep the backlog is: a full queue
            # behind a slow ladder needs a longer back-off than a blip.
            hint = self.config.retry_after_hint * max(1, len(tenant.queue))
            raise Overloaded(
                f"tenant {conn.tenant!r} queue is full "
                f"({tenant.config.max_queue})", retry_after=hint)
        limit = tenant.config.max_children
        if limit is not None and (
                len(tenant.children) + tenant.inflight + cost > limit):
            tenant.counters["shed"] += 1
            TELEMETRY.count("gateway_shed", tenant=conn.tenant)
            raise Overloaded(
                f"tenant {conn.tenant!r} at its {limit}-children limit; "
                f"wait() some first",
                retry_after=self.config.retry_after_hint)
        return tenant

    def _enqueue(self, tenant: _TenantState, job: _Job) -> None:
        was_empty = not tenant.queue
        tenant.queue.append(job)
        tenant.counters["admitted"] += 1
        if was_empty:
            # A newly backlogged tenant joins at the current virtual
            # clock — it gets its fair share from now on, not a refund
            # for the time it was idle (that refund is exactly how one
            # tenant would starve the rest after sitting out a burst).
            tenant.vtime = max(tenant.vtime, self._vclock)
        TELEMETRY.count("gateway_requests", tenant=job.tenant, op=job.kind)
        TELEMETRY.gauge("gateway_queue_depth",
                        sum(len(t.queue) for t in self._tenants.values()))
        self._wake.set()

    def _op_spawn(self, conn: _Connection, rid: Optional[int],
                  frame: dict) -> None:
        # Claim this request's grant *before* validating anything else:
        # a rejected request must not leave its fds in pending_fds for
        # the next request to claim FIFO (cross-request misassociation).
        fds = self._take_fds(conn, frame)
        try:
            argv = frame.get("argv")
            if (not isinstance(argv, list) or not argv
                    or not all(isinstance(a, str) for a in argv)):
                raise GatewayProtocolError(f"spawn needs a non-empty "
                                           f"string argv, got {argv!r}")
            env = frame.get("env")
            if env is not None and not isinstance(env, dict):
                raise GatewayProtocolError("env must be an object or null")
            cwd = frame.get("cwd")
            if cwd is not None and not isinstance(cwd, str):
                raise GatewayProtocolError("cwd must be a string or null")
            tenant = self._admit(conn, 1)
        except GatewayError:
            self._close_fds(fds)
            raise
        self._enqueue(tenant, _Job(conn, rid, "spawn",
                                   {"argv": argv, "env": env, "cwd": cwd},
                                   fds, 1, conn.tenant))

    def _op_spawn_batch(self, conn: _Connection, rid: Optional[int],
                        frame: dict) -> None:
        reqs = frame.get("reqs")
        if not isinstance(reqs, list) or not reqs:
            # Without a member count the grant size is unknowable; if
            # fds did arrive, the _handle_frame backstop hangs up the
            # connection so they cannot leak into a later request.
            raise GatewayProtocolError("spawn_batch needs a non-empty "
                                       "reqs list")
        fds = self._take_fds(conn, frame, members=len(reqs))
        try:
            try:
                batch = BatchRequest.from_wire(reqs)
            except SpawnError as exc:
                raise GatewayProtocolError(str(exc)) from exc
            tenant = self._admit(conn, len(reqs))
        except GatewayError:
            self._close_fds(fds)
            raise
        self._enqueue(tenant, _Job(conn, rid, "batch", {"batch": batch},
                                   fds, len(reqs), conn.tenant))

    def _op_lease(self, conn: _Connection, rid: Optional[int],
                  frame: dict) -> None:
        """Lease admission credits: ``count`` spawns exempt from the
        rate limit for ``ttl`` seconds — provisioned concurrency for a
        burst the tenant knows is coming.  Queue bounds still apply."""
        tenant = self._tenants[conn.tenant]
        count = frame.get("count", 1)
        ttl = frame.get("ttl", 10.0)
        if not isinstance(count, int) or count < 1:
            raise GatewayProtocolError(f"lease count must be a positive "
                                       f"integer, got {count!r}")
        if not isinstance(ttl, (int, float)) or ttl <= 0:
            raise GatewayProtocolError(f"lease ttl must be > 0, "
                                       f"got {ttl!r}")
        if self._draining:
            raise Overloaded("gateway is draining",
                             retry_after=self.config.drain_grace)
        granted = min(count, tenant.config.max_queue)
        ttl = min(float(ttl), MAX_LEASE_TTL)
        tenant.lease_credits = granted
        tenant.lease_expiry = time.monotonic() + ttl
        TELEMETRY.count("gateway_leases", tenant=conn.tenant)
        self._send(conn, {"id": rid,
                          "lease": {"count": granted, "ttl": ttl}})

    def _op_wait(self, conn: _Connection, rid: Optional[int],
                 frame: dict) -> None:
        tenant = self._tenants[conn.tenant]
        pid = frame.get("pid")
        if not isinstance(pid, int):
            raise GatewayProtocolError(f"wait needs an integer pid, "
                                       f"got {pid!r}")
        child = tenant.children.get(pid)
        if child is None:
            raise GatewayError(f"pid {pid} is not a live child of tenant "
                               f"{conn.tenant!r}")
        block = bool(frame.get("block", True))

        def wait_blocking():
            # Own thread, not the executor: a blocking wait parks for
            # the child's whole runtime and must never eat a spawn slot.
            def post(*call) -> None:
                # The daemon can stop (or be crash-injected) while this
                # thread is parked in wait(); by the time the child
                # exits the loop may be closed or already gone.
                loop = self._loop
                if loop is None:
                    return
                try:
                    loop.call_soon_threadsafe(*call)
                except RuntimeError:
                    pass  # loop already closed mid-shutdown

            try:
                try:
                    status = child.wait()
                except SpawnError as exc:
                    post(self._send, conn,
                         encode_error(GatewayError(str(exc)), rid))
                    return
                tenant.children.pop(pid, None)
                post(self._send, conn, {"id": rid, "status": status})
            finally:
                post(self._wait_finished, tenant)

        if block:
            # Each blocking wait parks one daemon thread until the
            # child exits; unbounded, a tenant with many live children
            # could exhaust the daemon's threads.  max_waits is the
            # admission bound for this op.
            limit = tenant.config.max_waits
            if tenant.waiting >= limit:
                tenant.counters["shed"] += 1
                TELEMETRY.count("gateway_shed", tenant=conn.tenant)
                raise Overloaded(
                    f"tenant {conn.tenant!r} at its {limit} concurrent "
                    f"blocking waits; poll with block=false instead",
                    retry_after=self.config.retry_after_hint)
            tenant.waiting += 1
            threading.Thread(target=wait_blocking, daemon=True,
                             name=f"gateway-wait-{pid}").start()
        else:
            try:
                status = child.poll()
            except SpawnError as exc:
                raise GatewayError(str(exc)) from exc
            if status is not None:
                tenant.children.pop(pid, None)
            self._send(conn, {"id": rid, "status": status})

    def _wait_finished(self, tenant: _TenantState) -> None:
        tenant.waiting -= 1

    # -- the weighted-fair scheduler -------------------------------------

    async def _scheduler(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._inflight < self.config.max_inflight:
                tenant = self._pick_tenant()
                if tenant is None:
                    break
                job = tenant.queue.popleft()
                # Start-time fair queueing: the global clock follows the
                # dispatched tenant's start tag; its finish tag advances
                # by cost/weight, so heavier tenants accrue time slower
                # and get picked proportionally more often.
                self._vclock = max(self._vclock, tenant.vtime)
                tenant.vtime += job.cost / tenant.config.weight
                tenant.inflight += 1
                self._inflight += 1
                TELEMETRY.gauge("gateway_inflight", self._inflight)
                future = self._loop.run_in_executor(
                    self._executor, self._execute, job)
                future.add_done_callback(
                    lambda fut, job=job, tenant=tenant:
                    self._job_done(job, tenant, fut))

    def _pick_tenant(self) -> Optional[_TenantState]:
        best = None
        for tenant in self._tenants.values():
            if tenant.queue and (best is None
                                 or tenant.vtime < best.vtime):
                best = tenant
        return best

    def _job_done(self, job: _Job, tenant: _TenantState, future) -> None:
        self._inflight -= 1
        tenant.inflight -= 1
        TELEMETRY.gauge("gateway_inflight", self._inflight)
        self._close_job_fds(job)
        try:
            reply = future.result()
        except GatewayError as exc:
            tenant.counters["failed"] += 1
            self._send(job.conn, encode_error(exc, job.rid))
        except (SpawnError, OSError) as exc:
            tenant.counters["failed"] += 1
            self._send(job.conn, encode_error(GatewayError(str(exc)),
                                              job.rid))
        except Exception as exc:
            self._internal_errors += 1
            tenant.counters["failed"] += 1
            TELEMETRY.count("gateway_internal_errors")
            self._send(job.conn, encode_error(
                GatewayError(f"internal error: {exc}"), job.rid))
        else:
            tenant.counters["completed"] += 1
            latency_ms = (time.monotonic() - job.t_enqueued) * 1e3
            TELEMETRY.observe("gateway_latency_ms", latency_ms,
                              tenant=job.tenant)
            reply["id"] = job.rid
            self._send(job.conn, reply)
        self._wake.set()
        self._check_drained()

    # -- the blocking half (executor threads) ----------------------------

    def _execute(self, job: _Job) -> dict:
        """Run one admitted job through the tenant's strategy ladder.

        Blocking — executor threads only.  Tenant breakers ride the
        shared :func:`breaker_for` registry under a per-tenant key, so a
        tenant whose spawns keep failing stops consuming ladder attempts
        while everyone else's breaker stays closed.
        """
        tenant = self._tenants[job.tenant]
        breaker = breaker_for(f"gateway:{job.tenant}", tenant.policy)
        if not breaker.allow():
            raise Overloaded(
                f"tenant {job.tenant!r} circuit breaker is open",
                retry_after=tenant.policy.breaker_cooldown)
        try:
            if job.kind == "spawn":
                reply = self._execute_spawn(tenant, job)
            else:
                reply = self._execute_batch(tenant, job)
        except (SpawnError, OSError):
            breaker.record_failure()
            raise
        breaker.record_success()
        return reply

    def _execute_spawn(self, tenant: _TenantState, job: _Job) -> dict:
        payload = job.payload
        builder = (ProcessBuilder(*payload["argv"])
                   .strategy(tenant.config.strategy)
                   .policy(tenant.policy))
        if payload["env"] is not None:
            builder.env(payload["env"])
        if payload["cwd"] is not None:
            builder.cwd(payload["cwd"])
        if job.fds:
            (builder.stdin_from_fd(job.fds[0])
                    .stdout_to_fd(job.fds[1])
                    .stderr_to_fd(job.fds[2]))
        child = builder.spawn()
        tenant.children[child.pid] = child
        return {"pid": child.pid}

    def _execute_batch(self, tenant: _TenantState, job: _Job) -> dict:
        from ..core.strategies import spawn_batch
        batch: BatchRequest = job.payload["batch"]
        if job.fds:
            for index, member in enumerate(batch.members):
                member.stdin = job.fds[3 * index]
                member.stdout = job.fds[3 * index + 1]
                member.stderr = job.fds[3 * index + 2]
        result = spawn_batch(BatchRequest(batch.members,
                                          policy=tenant.policy,
                                          deadline=tenant.policy.deadline))
        for child in result:
            tenant.children[child.pid] = child
        return {"pids": result.pids, "strategy": result.strategy}

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict:
        """A point-in-time snapshot (also the ``stats`` op's reply)."""
        tenants = {}
        for name, tenant in self._tenants.items():
            tenants[name] = dict(tenant.counters,
                                 queued=len(tenant.queue),
                                 inflight=tenant.inflight,
                                 waiting=tenant.waiting,
                                 children=len(tenant.children),
                                 weight=tenant.config.weight,
                                 vtime=round(tenant.vtime, 6))
        return {"draining": self._draining,
                "inflight": self._inflight,
                "internal_errors": self._internal_errors,
                "shed_total": sum(t.counters["shed"]
                                  for t in self._tenants.values()),
                "tenants": tenants}

    # -- small helpers -----------------------------------------------------

    @staticmethod
    def _close_fds(fds: List[int]) -> None:
        for fd in fds:
            try:
                os.close(fd)
            except OSError:
                pass

    def _close_job_fds(self, job: _Job) -> None:
        self._close_fds(job.fds)
        job.fds = []

    def __repr__(self):
        where = self._unix_path or f"tcp:{self._tcp_port}"
        return (f"<GatewayServer {where} tenants={len(self._tenants)} "
                f"{'draining' if self._draining else 'serving'}>")


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.gateway``: run a standalone daemon.

    Takes one argument — the JSON config path — plus ``--print-stats``
    to dump a stats snapshot on exit.  SIGTERM (and SIGINT) drain
    gracefully: in-flight and queued spawns complete, new ones are
    refused with Retry-After, then the daemon exits 0.
    """
    import argparse
    import signal

    parser = argparse.ArgumentParser(
        prog="repro.gateway", description="multi-tenant spawn daemon")
    parser.add_argument("config", help="path to a gateway JSON config")
    parser.add_argument("--print-stats", action="store_true",
                        help="dump a stats snapshot to stdout on exit")
    args = parser.parse_args(argv)

    config = GatewayConfig.from_file(args.config)
    server = GatewayServer(config).start()
    done = threading.Event()

    def on_signal(signum, frame):
        server.drain()
        done.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    where = server.unix_path or f"{config.tcp_host}:{server.tcp_port}"
    print(f"gateway listening on {where} "
          f"({len(config.tenants)} tenants)", flush=True)
    done.wait()
    server.stop()
    if args.print_stats:
        print(json.dumps(server.stats(), indent=2))
    return 0
