"""``python -m repro.gateway`` — run a standalone spawn-gateway daemon."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
