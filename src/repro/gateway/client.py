"""GatewayClient: the synchronous, pipelined, self-healing client.

The client mirrors the :class:`~repro.core.forkserver.ForkServer`
channel design — one socket, a small send lock, a dedicated reader
thread, and per-request futures matched by correlation id — so many
threads can have spawns in flight at once without waiting on each
other's round trips.

Unlike the forkserver channel, the gateway connection crosses a real
network boundary, so the client owns a failure story:

* a dead channel fails every in-flight request with the typed
  :class:`~repro.errors.GatewayConnectionLost` (never a hang, never a
  bare ``OSError``);
* with ``reconnect`` enabled (the default) the next operation re-dials
  with capped exponential backoff + jitter and **re-authenticates**
  (the ``hello`` handshake runs on every dial — the daemon forgets the
  tenant with the connection);
* idempotent ops (``wait``, ``stats``, ``lease``, ``ping``, ...) are
  re-issued transparently after a reconnect, so an in-flight child is
  never lost to a connection blip: the daemon still holds it, and the
  re-issued ``wait`` returns its real exit status;
* ``spawn``/``spawn_batch`` are re-issued only when the request frame
  provably never reached the daemon (nothing was sent) — a loss after
  the frame was fully sent is ambiguous and surfaces as
  :class:`GatewayConnectionLost` for the caller (or the
  :class:`~repro.core.policy.SpawnPolicy` ladder) to arbitrate;
* a :class:`~repro.errors.RateLimited` refusal with a Retry-After hint
  is honoured for up to ``rate_limit_retries`` bounded sleeps.

Over a Unix socket the client grants the child's stdio triple as
SCM_RIGHTS ancillary data, exactly like the forkserver wire protocol;
over TCP no descriptors can travel, so spawns run with ``nfds=0`` (the
child inherits the *daemon's* stdio) and requests that need stdio
wiring are refused locally.

Errors come back typed: a reply's ``error`` object decodes through
:func:`repro.gateway.protocol.decode_error` into the
:class:`~repro.errors.GatewayError` hierarchy, so callers catch
:class:`~repro.errors.RateLimited` (with ``retry_after``) or
:class:`~repro.errors.Overloaded` instead of parsing strings.
"""

from __future__ import annotations

import array
import os
import random
import socket
import threading
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import BatchRequest, BatchResult
from ..core.forkserver import _SCM_MAX_FD
from ..core.result import ChildProcess
from ..errors import (GatewayConnectionLost, GatewayError,
                      GatewayProtocolError, RateLimited, SpawnError,
                      SpawnTimeout)
from ..faults import FAULTS
from ..obs import NULL_TRACE, TELEMETRY
from .protocol import (FrameDecoder, PROTOCOL_VERSION, decode_error,
                       encode_frame)

#: Address forms :class:`GatewayClient` accepts.
Address = Union[str, Tuple[str, int]]


def _encode_status(returncode: int) -> int:
    """Re-encode a wire returncode as a raw waitpid status (the shape
    :class:`ChildProcess` reapers speak)."""
    if returncode < 0:
        return -returncode  # killed by signal N -> low 7 bits
    return returncode << 8


class _Pending:
    """One in-flight request's future: an event plus its eventual reply
    (or the typed error the channel died with)."""

    __slots__ = ("event", "reply", "error")

    def __init__(self):
        self.event = threading.Event()
        self.reply: Optional[dict] = None
        self.error: Optional[GatewayError] = None


class GatewayClient:
    """A connection to one gateway daemon, as one tenant.

    ``address`` is a Unix-socket path (str) or a ``(host, port)`` pair;
    ``tenant``/``token`` authenticate the ``hello`` handshake.  Usable
    as a context manager and safe to share across threads.

    Resilience knobs:

    * ``reconnect`` — re-dial (and re-auth) automatically when the
      channel dies; ``max_reconnects`` bounds the attempts per outage,
      with exponential backoff from ``reconnect_backoff`` capped at
      ``reconnect_backoff_max`` and spread over ``±reconnect_jitter``;
    * ``rate_limit_retries`` — how many times one operation sleeps out
      a :class:`~repro.errors.RateLimited` Retry-After hint before the
      error is surfaced (0 = surface immediately, the cooperative
      caller owns the backoff); the honoured sleep is the daemon's
      hint bounded by ``rate_limit_sleep_max`` — its own cap, *not*
      the reconnect backoff cap, so a multi-second hint is actually
      waited out instead of being re-asked too early;
    * ``join_timeout`` — seconds :meth:`close` waits for the reader
      thread; a reader that fails to join is reported (``RuntimeWarning``
      plus the ``gateway_reader_leak`` counter), never silently leaked.
    """

    #: Seconds the hello handshake (and default round trips) may take.
    default_timeout = 10.0

    def __init__(self, address: Address, *, tenant: str, token: str,
                 timeout: Optional[float] = None,
                 reconnect: bool = True,
                 max_reconnects: int = 5,
                 reconnect_backoff: float = 0.05,
                 reconnect_backoff_max: float = 2.0,
                 reconnect_jitter: float = 0.5,
                 rate_limit_retries: int = 0,
                 rate_limit_sleep_max: float = 30.0,
                 join_timeout: float = 2.0):
        self.address = address
        self.tenant = tenant
        self._token = token
        self._timeout = (timeout if timeout is not None
                         else self.default_timeout)
        self._reconnect = reconnect
        self._max_reconnects = max(0, int(max_reconnects))
        self._backoff = reconnect_backoff
        self._backoff_max = reconnect_backoff_max
        self._jitter = reconnect_jitter
        self._rate_limit_retries = max(0, int(rate_limit_retries))
        self._rate_limit_sleep_max = max(0.0, rate_limit_sleep_max)
        self._join_timeout = join_timeout
        self._sock: Optional[socket.socket] = None
        self._is_unix = isinstance(address, str)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._conn_lock = threading.RLock()
        self._pending: Dict[int, _Pending] = {}
        self._next_id = 0
        self._reader: Optional[threading.Thread] = None
        self._dead: Optional[str] = None
        self._generation = 0
        self._ever_connected = False
        self._closed = False
        #: Set by close() *before* it takes _conn_lock, so a reconnect
        #: loop holding the lock notices promptly (its backoff waits on
        #: this event) instead of blocking close() for the full budget.
        self._close_event = threading.Event()
        self._reconnects = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def healthy(self) -> bool:
        return self._sock is not None and self._dead is None

    @property
    def reconnects(self) -> int:
        """Successful re-dials since this client was created."""
        return self._reconnects

    def connect(self) -> "GatewayClient":
        """Dial the daemon and run the ``hello`` handshake (idempotent)."""
        with self._conn_lock:
            self._closed = False
            self._close_event.clear()
            if self.healthy:
                return self
            self._dial_locked()
        return self

    def _dial_locked(self) -> None:
        """Tear down whatever channel exists and dial a fresh one.

        Runs the full ``hello`` re-auth on every dial; on any failure
        the half-open socket is torn down before the error propagates.
        Caller holds ``_conn_lock``.
        """
        self._teardown_locked("gateway client reconnecting")
        FAULTS.fire("gateway.connect", tenant=self.tenant)
        if self._is_unix:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._timeout)
            sock.connect(self.address)
            sock.settimeout(None)
        except OSError as exc:
            sock.close()
            raise GatewayError(
                f"cannot reach gateway at {self.address!r}: {exc}") from exc
        with self._state_lock:
            self._dead = None
            self._sock = sock
            generation = self._generation
        self._reader = threading.Thread(
            target=self._read_replies, args=(sock, generation),
            name="gateway-client-reader", daemon=True)
        self._reader.start()
        try:
            reply = self._roundtrip_once({"op": "hello",
                                          "tenant": self.tenant,
                                          "token": self._token},
                                         timeout=self._timeout)
            if reply.get("ok") is not True:
                raise GatewayError(f"gateway refused hello: {reply}")
            version = reply.get("version")
            if version != PROTOCOL_VERSION:
                raise GatewayProtocolError(
                    f"gateway speaks protocol {version}, this client "
                    f"speaks {PROTOCOL_VERSION}")
        except Exception:
            self._teardown_locked("gateway handshake failed")
            raise
        self._ever_connected = True

    def _teardown_locked(self, why: str) -> None:
        """Close the current socket and fail its in-flight requests.

        Caller holds ``_conn_lock``.  Advancing the generation first
        means a stale reader thread noticing the closed socket later
        cannot poison the *next* channel.
        """
        with self._state_lock:
            self._generation += 1
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._fail_pending(why, generation=None)
        reader, self._reader = self._reader, None
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=self._join_timeout)
            if reader.is_alive():
                TELEMETRY.count("gateway_reader_leak")
                warnings.warn(
                    f"gateway reader thread failed to join within "
                    f"{self._join_timeout}s; abandoning it "
                    f"(address={self.address!r})", RuntimeWarning,
                    stacklevel=3)

    def close(self) -> None:
        """Hang up (idempotent); in-flight requests fail fast.

        A closed client stays closed: automatic reconnect is disabled
        until an explicit :meth:`connect`.  Raising the close flag
        before taking the lock lets an in-progress reconnect (which
        holds the lock across its backoff waits) bail out promptly
        instead of making close() wait out the whole reconnect budget.
        """
        self._close_event.set()
        with self._conn_lock:
            self._closed = True
            self._teardown_locked("gateway client closed")

    def __enter__(self) -> "GatewayClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the wire ---------------------------------------------------------

    def _read_replies(self, sock: socket.socket, generation: int) -> None:
        decoder = FrameDecoder()
        while True:
            try:
                data = sock.recv(65536)
                if not data:
                    raise GatewayConnectionLost("gateway hung up")
                replies = decoder.feed(data)
            except Exception as exc:
                self._fail_pending(str(exc) or type(exc).__name__,
                                   generation=generation)
                return
            for reply in replies:
                with self._state_lock:
                    if self._generation != generation:
                        return  # superseded channel; drop the stragglers
                    pending = self._pending.pop(reply.get("id"), None)
                if pending is not None:
                    pending.reply = reply
                    pending.event.set()
                elif "error" in reply and reply.get("id") is None:
                    # An un-addressed error frame is the daemon telling
                    # us the *stream* is broken (framing error) — every
                    # in-flight request on it is lost.
                    error = decode_error(reply["error"])
                    self._fail_pending(str(error), generation=generation)
                    return

    def _fail_pending(self, why: str,
                      generation: Optional[int]) -> None:
        """Mark the channel dead and fail every in-flight request with
        a typed :class:`GatewayConnectionLost`.

        ``generation`` guards stale reader threads: a reader whose
        channel was already replaced must not poison the new one.
        ``None`` means the caller (teardown) owns the current channel
        unconditionally.
        """
        with self._state_lock:
            if generation is not None and generation != self._generation:
                return
            if self._dead is None:
                self._dead = why
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.error = GatewayConnectionLost(
                f"gateway connection lost: {why}")
            pending.event.set()

    # -- reconnect machinery ----------------------------------------------

    def _reconnect_delay(self, attempt: int) -> float:
        """Capped exponential backoff with symmetric jitter."""
        base = min(self._backoff * (2.0 ** attempt), self._backoff_max)
        if not self._jitter or not base:
            return base
        spread = self._jitter * (2.0 * random.random() - 1.0)
        return max(0.0, base * (1.0 + spread))

    def _ensure_channel(self, trace=NULL_TRACE) -> None:
        """Make the channel usable, re-dialing (and re-authing) if dead.

        Raises the last dial error when ``max_reconnects`` attempts all
        fail, :class:`GatewayError` when the client was never connected
        or was explicitly closed.
        """
        if self.healthy:
            return
        with self._conn_lock:
            if self.healthy:
                return
            if self._closed:
                raise GatewayError("gateway client is closed")
            if not self._ever_connected:
                raise GatewayError("gateway client is not connected")
            if not self._reconnect:
                raise GatewayConnectionLost(
                    f"gateway channel is dead: {self._dead} "
                    f"(reconnect disabled)")
            last: Optional[Exception] = None
            for attempt in range(self._max_reconnects):
                if attempt:
                    # An Event wait, not a sleep: close() sets
                    # _close_event before blocking on _conn_lock, so
                    # it can interrupt the backoff mid-wait.
                    if self._close_event.wait(
                            self._reconnect_delay(attempt - 1)):
                        raise GatewayError("gateway client is closed")
                if self._close_event.is_set():
                    raise GatewayError("gateway client is closed")
                trace.stage("reconnect", attempt=attempt)
                try:
                    self._dial_locked()
                except GatewayError as exc:
                    last = exc
                    continue
                self._reconnects += 1
                TELEMETRY.count("gateway_reconnect")
                return
            raise GatewayConnectionLost(
                f"gateway at {self.address!r} unreachable after "
                f"{self._max_reconnects} reconnect attempts: {last}")

    def _roundtrip(self, obj: dict, fds: Sequence[int] = (),
                   timeout: Optional[float] = None, *,
                   retryable: bool = False, trace=NULL_TRACE) -> dict:
        """One request/reply exchange, healed across channel death.

        ``retryable`` ops are re-issued after a successful reconnect;
        non-retryable ops (spawns) are re-issued only when the request
        frame provably never left this process.  Rate-limit refusals
        sleep out their Retry-After hint up to ``rate_limit_retries``
        times.  Raises typed errors.
        """
        rate_budget = self._rate_limit_retries
        reissues = 0
        while True:
            self._ensure_channel(trace)
            try:
                return self._roundtrip_once(obj, fds, timeout)
            except RateLimitedPause as pause:
                if rate_budget <= 0:
                    raise pause.error from None
                rate_budget -= 1
                TELEMETRY.count("gateway_retry", why="rate_limited")
                # Honour the daemon's hint up to the dedicated cap —
                # sleeping less than asked just burns the retry budget
                # on a request the daemon already said is too early.
                time.sleep(min(pause.error.retry_after or 0.0,
                               self._rate_limit_sleep_max))
            except GatewayConnectionLost as exc:
                safe = retryable or getattr(exc, "unsent", False)
                if (not safe or self._closed or not self._reconnect
                        or reissues >= self._max_reconnects):
                    raise
                reissues += 1
                TELEMETRY.count("gateway_retry", why="conn_lost")

    def _roundtrip_once(self, obj: dict, fds: Sequence[int] = (),
                        timeout: Optional[float] = None) -> dict:
        """One exchange on the *current* channel; raises typed errors.

        The correlation-map entry is popped on **every** exit path —
        success, send failure, timeout, channel death, even a failed
        ``encode_frame`` — so a dead waiter can never be written into
        by a late reply, and the map cannot accumulate stale entries.
        """
        sock = self._sock
        if sock is None:
            raise GatewayError("gateway client is not connected")
        with self._state_lock:
            if self._dead is not None:
                lost = GatewayConnectionLost(
                    f"gateway channel is dead: {self._dead}")
                lost.unsent = True
                raise lost
            rid = self._next_id
            self._next_id += 1
            pending = _Pending()
            self._pending[rid] = pending
            generation = self._generation
        try:
            frame = encode_frame(dict(obj, id=rid))
            fault = FAULTS.fire("gateway.frame", tenant=self.tenant,
                                op=obj.get("op"))
            if fault is not None:
                self._apply_frame_fault(fault, sock, frame, generation)
            ancdata = []
            if fds:
                ancdata = [(socket.SOL_SOCKET, socket.SCM_RIGHTS,
                            array.array("i", list(fds)).tobytes())]
            sent = 0
            try:
                with self._send_lock:
                    sent = sock.sendmsg([frame], ancdata)
                    while sent < len(frame):
                        sent += sock.send(memoryview(frame)[sent:])
            except OSError as exc:
                self._fail_pending(str(exc) or type(exc).__name__,
                                   generation=generation)
                lost = GatewayConnectionLost(
                    f"gateway channel failed: {exc}")
                # A partially sent frame can never be parsed, so the
                # daemon provably did not act on it: safe to re-issue.
                lost.unsent = sent < len(frame)
                raise lost from exc
            if not pending.event.wait(timeout):
                raise SpawnTimeout(
                    f"gateway request {rid} ({obj.get('op')}) exceeded "
                    f"its {timeout}s deadline")
            if pending.error is not None:
                raise pending.error
            if pending.reply is None:
                raise GatewayConnectionLost(
                    f"gateway died before replying: {self._dead}")
            if "error" in pending.reply:
                error = decode_error(pending.reply["error"])
                if (isinstance(error, RateLimited)
                        and error.retry_after is not None):
                    raise RateLimitedPause(error)
                raise error
            return pending.reply
        finally:
            with self._state_lock:
                self._pending.pop(rid, None)

    def _apply_frame_fault(self, fault, sock: socket.socket,
                           frame: bytes, generation: int) -> None:
        """Interpret a ``gateway.frame`` fault against the live socket."""
        if fault.kind == "conn_reset":
            # Kill the transport out from under the send that follows:
            # it fails like a peer RST, and the reader sees EOF.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        elif fault.kind == "partial_frame":
            try:
                with self._send_lock:
                    sock.send(frame[:max(1, len(frame) // 2)])
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._fail_pending("injected fault: partial frame",
                               generation=generation)
            lost = GatewayConnectionLost(
                "injected fault: connection died mid-frame")
            lost.unsent = True  # a half frame is never acted on
            raise lost

    def _require_fd_transport(self, what: str) -> None:
        if not self._is_unix:
            raise GatewayError(
                f"{what} needs stdio fd grants, which only travel over "
                f"a unix-socket connection (this client is on TCP)")

    # -- operations --------------------------------------------------------

    def spawn(self, argv: Sequence[str], *,
              env: Optional[Dict[str, str]] = None,
              cwd: Optional[str] = None,
              stdin: int = 0, stdout: int = 1, stderr: int = 2,
              trace=NULL_TRACE,
              deadline: Optional[float] = None) -> ChildProcess:
        """Spawn ``argv`` through the gateway; returns a live handle.

        Over a Unix socket the stdio triple is granted as SCM_RIGHTS
        (so pipes wire up exactly like a local spawn); the returned
        :class:`ChildProcess` reaps through the gateway's ``wait`` op —
        the child is the *daemon's* child, like forkserver children.

        A spawn is only re-issued across a reconnect when its frame
        never reached the daemon; an ambiguous loss (frame sent, no
        reply) raises :class:`~repro.errors.GatewayConnectionLost`.
        """
        if not argv:
            raise SpawnError("empty argv")
        request = {"op": "spawn",
                   "argv": [os.fspath(a) for a in argv],
                   "env": env, "cwd": cwd}
        fds: Sequence[int] = ()
        if self._is_unix:
            request["nfds"] = 3
            fds = (stdin, stdout, stderr)
            TELEMETRY.count("fd_grants", 3)
        elif (stdin, stdout, stderr) != (0, 1, 2):
            self._require_fd_transport("stdio wiring")
        else:
            request["nfds"] = 0
        trace.stage("dispatch", gateway=str(self.address))
        reply = self._roundtrip(request, fds=fds,
                                timeout=deadline or self._timeout,
                                trace=trace)
        if "pid" not in reply:
            raise GatewayError(f"gateway refused spawn: {reply}")
        trace.stage("forked", pid=reply["pid"])
        return ChildProcess(reply["pid"], argv=argv, strategy="gateway",
                            reaper=self._reap, trace=trace)

    def spawn_batch(self, requests, *,
                    deadline: Optional[float] = None) -> BatchResult:
        """Spawn N children in one wire round trip (a
        :class:`BatchRequest`; bare sequences coerce but warn)."""
        from ..core.batch import coerce_batch
        if not isinstance(requests, BatchRequest):
            batch = coerce_batch("GatewayClient.spawn_batch", requests,
                                 deadline=deadline)
        else:
            batch = requests
        if deadline is None:
            deadline = batch.deadline
        if not batch:
            raise SpawnError("empty batch")
        request = {"op": "spawn_batch", "reqs": batch.wire()}
        fds: List[int] = []
        if self._is_unix:
            for member in batch.members:
                fds.extend(member.grant())
            if len(fds) > _SCM_MAX_FD:
                raise SpawnError(
                    f"batch of {len(batch)} needs {len(fds)} fd grants; "
                    f"one SCM_RIGHTS message carries at most "
                    f"{_SCM_MAX_FD} — split the batch")
            request["nfds"] = 3
            TELEMETRY.count("fd_grants", len(fds))
        else:
            for member in batch.members:
                if member.grant() != (0, 1, 2):
                    self._require_fd_transport("batch stdio wiring")
            request["nfds"] = 0
        reply = self._roundtrip(request, fds=fds,
                                timeout=deadline or self._timeout)
        pids = reply.get("pids")
        if pids is None or len(pids) != len(batch):
            raise GatewayError(f"gateway refused batch: {reply}")
        children = [
            ChildProcess(pid, argv=member.argv, strategy="gateway",
                         reaper=self._reap)
            for pid, member in zip(pids, batch.members)]
        return BatchResult(children, strategy="gateway")

    def ping(self) -> dict:
        """Liveness probe (pre-auth on the daemon side): the pong reply."""
        return self._roundtrip({"op": "ping"}, timeout=self._timeout,
                               retryable=True)

    def lease(self, count: int, ttl: float = 10.0) -> dict:
        """Reserve ``count`` rate-limit-exempt admission credits for
        ``ttl`` seconds (provisioned concurrency for a known burst)."""
        reply = self._roundtrip({"op": "lease", "count": count,
                                 "ttl": ttl}, timeout=self._timeout,
                                retryable=True)
        return reply.get("lease", {})

    def stats(self) -> dict:
        """The daemon's stats snapshot (queues, sheds, per-tenant)."""
        reply = self._roundtrip({"op": "stats"}, timeout=self._timeout,
                                retryable=True)
        return reply.get("stats", {})

    def drain(self) -> None:
        """Ask the daemon to drain (refuse new, finish admitted).

        Admin tenants only: a non-admin tenant gets
        :class:`~repro.errors.AuthError`, because drain denies spawn
        service to every other tenant.
        """
        self._roundtrip({"op": "drain"}, timeout=self._timeout,
                        retryable=True)

    def resume(self) -> None:
        """Ask the daemon to leave drain mode (admin tenants only)."""
        self._roundtrip({"op": "drain", "resume": True},
                        timeout=self._timeout, retryable=True)

    def _reap(self, pid: int, flags: int) -> Optional[int]:
        """ChildProcess reaper: wait through the daemon.

        Non-blocking polls answer immediately; a blocking wait parks
        until the daemon's SIGCHLD path reports the exit.  Retryable:
        a connection lost mid-wait reconnects and re-issues the wait —
        the child is the daemon's, so its status survives our blip.
        """
        reply = self._roundtrip({"op": "wait", "pid": pid,
                                 "block": flags == 0}, retryable=True)
        status = reply.get("status")
        if status is None:
            return None
        return _encode_status(status)

    def __repr__(self):
        state = ("healthy" if self.healthy
                 else "closed" if not self.connected else "dead")
        return (f"<GatewayClient {self.address!r} tenant={self.tenant} "
                f"{state}>")


class RateLimitedPause(Exception):
    """Internal control flow: a RateLimited reply whose Retry-After the
    retry loop may sleep out (never escapes :meth:`_roundtrip`)."""

    def __init__(self, error: RateLimited):
        super().__init__(str(error))
        self.error = error
