"""GatewayClient: the synchronous, pipelined client for the daemon.

The client mirrors the :class:`~repro.core.forkserver.ForkServer`
channel design — one socket, a small send lock, a dedicated reader
thread, and per-request futures matched by correlation id — so many
threads can have spawns in flight at once without waiting on each
other's round trips.

Over a Unix socket the client grants the child's stdio triple as
SCM_RIGHTS ancillary data, exactly like the forkserver wire protocol;
over TCP no descriptors can travel, so spawns run with ``nfds=0`` (the
child inherits the *daemon's* stdio) and requests that need stdio
wiring are refused locally.

Errors come back typed: a reply's ``error`` object decodes through
:func:`repro.gateway.protocol.decode_error` into the
:class:`~repro.errors.GatewayError` hierarchy, so callers catch
:class:`~repro.errors.RateLimited` (with ``retry_after``) or
:class:`~repro.errors.Overloaded` instead of parsing strings.
"""

from __future__ import annotations

import array
import os
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import BatchRequest, BatchResult
from ..core.forkserver import _SCM_MAX_FD
from ..core.result import ChildProcess
from ..errors import (GatewayError, GatewayProtocolError, SpawnError,
                      SpawnTimeout)
from ..obs import NULL_TRACE, TELEMETRY
from .protocol import (FrameDecoder, PROTOCOL_VERSION, decode_error,
                       encode_frame)

#: Address forms :class:`GatewayClient` accepts.
Address = Union[str, Tuple[str, int]]


def _encode_status(returncode: int) -> int:
    """Re-encode a wire returncode as a raw waitpid status (the shape
    :class:`ChildProcess` reapers speak)."""
    if returncode < 0:
        return -returncode  # killed by signal N -> low 7 bits
    return returncode << 8


class _Pending:
    """One in-flight request's future: an event plus its eventual reply."""

    __slots__ = ("event", "reply")

    def __init__(self):
        self.event = threading.Event()
        self.reply: Optional[dict] = None


class GatewayClient:
    """A connection to one gateway daemon, as one tenant.

    ``address`` is a Unix-socket path (str) or a ``(host, port)`` pair;
    ``tenant``/``token`` authenticate the ``hello`` handshake.  Usable
    as a context manager and safe to share across threads.
    """

    #: Seconds the hello handshake (and default round trips) may take.
    default_timeout = 10.0

    def __init__(self, address: Address, *, tenant: str, token: str,
                 timeout: Optional[float] = None):
        self.address = address
        self.tenant = tenant
        self._token = token
        self._timeout = (timeout if timeout is not None
                         else self.default_timeout)
        self._sock: Optional[socket.socket] = None
        self._is_unix = isinstance(address, str)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: Dict[int, _Pending] = {}
        self._next_id = 0
        self._reader: Optional[threading.Thread] = None
        self._dead: Optional[str] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def healthy(self) -> bool:
        return self._sock is not None and self._dead is None

    def connect(self) -> "GatewayClient":
        """Dial the daemon and run the ``hello`` handshake (idempotent)."""
        if self.connected:
            return self
        self._dead = None
        if self._is_unix:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(self._timeout)
            sock.connect(self.address)
            sock.settimeout(None)
        except OSError as exc:
            sock.close()
            raise GatewayError(
                f"cannot reach gateway at {self.address!r}: {exc}") from exc
        self._sock = sock
        self._reader = threading.Thread(
            target=self._read_replies, args=(sock,),
            name="gateway-client-reader", daemon=True)
        self._reader.start()
        try:
            reply = self._roundtrip({"op": "hello", "tenant": self.tenant,
                                     "token": self._token},
                                    timeout=self._timeout)
            if reply.get("ok") is not True:
                raise GatewayError(f"gateway refused hello: {reply}")
            version = reply.get("version")
            if version != PROTOCOL_VERSION:
                raise GatewayProtocolError(
                    f"gateway speaks protocol {version}, this client "
                    f"speaks {PROTOCOL_VERSION}")
        except Exception:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Hang up (idempotent); in-flight requests fail fast."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._fail_pending("gateway client closed")
        reader, self._reader = self._reader, None
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)

    def __enter__(self) -> "GatewayClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the wire ---------------------------------------------------------

    def _read_replies(self, sock: socket.socket) -> None:
        decoder = FrameDecoder()
        while True:
            try:
                data = sock.recv(65536)
                if not data:
                    raise GatewayError("gateway hung up")
                replies = decoder.feed(data)
            except Exception as exc:
                self._fail_pending(str(exc) or type(exc).__name__)
                return
            for reply in replies:
                with self._state_lock:
                    pending = self._pending.pop(reply.get("id"), None)
                if pending is not None:
                    pending.reply = reply
                    pending.event.set()
                elif "error" in reply and reply.get("id") is None:
                    # An un-addressed error frame is the daemon telling
                    # us the *stream* is broken (framing error) — every
                    # in-flight request on it is lost.
                    error = decode_error(reply["error"])
                    self._fail_pending(str(error))
                    return

    def _fail_pending(self, why: str) -> None:
        with self._state_lock:
            if self._dead is None:
                self._dead = why
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.event.set()

    def _roundtrip(self, obj: dict, fds: Sequence[int] = (),
                   timeout: Optional[float] = None) -> dict:
        """One pipelined request/reply exchange; raises typed errors."""
        sock = self._sock
        if sock is None:
            raise GatewayError("gateway client is not connected")
        with self._state_lock:
            if self._dead is not None:
                raise GatewayError(
                    f"gateway channel is dead: {self._dead}")
            rid = self._next_id
            self._next_id += 1
            pending = _Pending()
            self._pending[rid] = pending
        frame = encode_frame(dict(obj, id=rid))
        ancdata = []
        if fds:
            ancdata = [(socket.SOL_SOCKET, socket.SCM_RIGHTS,
                        array.array("i", list(fds)).tobytes())]
        try:
            with self._send_lock:
                sent = sock.sendmsg([frame], ancdata)
                while sent < len(frame):
                    sent += sock.send(memoryview(frame)[sent:])
        except OSError as exc:
            with self._state_lock:
                self._pending.pop(rid, None)
            self._fail_pending(str(exc) or type(exc).__name__)
            raise GatewayError(f"gateway channel failed: {exc}") from exc
        except Exception:
            with self._state_lock:
                self._pending.pop(rid, None)
            raise
        if not pending.event.wait(timeout):
            with self._state_lock:
                self._pending.pop(rid, None)
            raise SpawnTimeout(
                f"gateway request {rid} ({obj.get('op')}) exceeded its "
                f"{timeout}s deadline")
        if pending.reply is None:
            raise GatewayError(f"gateway died before replying: "
                               f"{self._dead}")
        if "error" in pending.reply:
            raise decode_error(pending.reply["error"])
        return pending.reply

    def _require_fd_transport(self, what: str) -> None:
        if not self._is_unix:
            raise GatewayError(
                f"{what} needs stdio fd grants, which only travel over "
                f"a unix-socket connection (this client is on TCP)")

    # -- operations --------------------------------------------------------

    def spawn(self, argv: Sequence[str], *,
              env: Optional[Dict[str, str]] = None,
              cwd: Optional[str] = None,
              stdin: int = 0, stdout: int = 1, stderr: int = 2,
              trace=NULL_TRACE,
              deadline: Optional[float] = None) -> ChildProcess:
        """Spawn ``argv`` through the gateway; returns a live handle.

        Over a Unix socket the stdio triple is granted as SCM_RIGHTS
        (so pipes wire up exactly like a local spawn); the returned
        :class:`ChildProcess` reaps through the gateway's ``wait`` op —
        the child is the *daemon's* child, like forkserver children.
        """
        if not argv:
            raise SpawnError("empty argv")
        request = {"op": "spawn",
                   "argv": [os.fspath(a) for a in argv],
                   "env": env, "cwd": cwd}
        fds: Sequence[int] = ()
        if self._is_unix:
            request["nfds"] = 3
            fds = (stdin, stdout, stderr)
            TELEMETRY.count("fd_grants", 3)
        elif (stdin, stdout, stderr) != (0, 1, 2):
            self._require_fd_transport("stdio wiring")
        else:
            request["nfds"] = 0
        trace.stage("dispatch", gateway=str(self.address))
        reply = self._roundtrip(request, fds=fds,
                                timeout=deadline or self._timeout)
        if "pid" not in reply:
            raise GatewayError(f"gateway refused spawn: {reply}")
        trace.stage("forked", pid=reply["pid"])
        return ChildProcess(reply["pid"], argv=argv, strategy="gateway",
                            reaper=self._reap, trace=trace)

    def spawn_batch(self, requests, *,
                    deadline: Optional[float] = None) -> BatchResult:
        """Spawn N children in one wire round trip (a
        :class:`BatchRequest`; bare sequences coerce but warn)."""
        from ..core.batch import coerce_batch
        if not isinstance(requests, BatchRequest):
            batch = coerce_batch("GatewayClient.spawn_batch", requests,
                                 deadline=deadline)
        else:
            batch = requests
        if deadline is None:
            deadline = batch.deadline
        if not batch:
            raise SpawnError("empty batch")
        request = {"op": "spawn_batch", "reqs": batch.wire()}
        fds: List[int] = []
        if self._is_unix:
            for member in batch.members:
                fds.extend(member.grant())
            if len(fds) > _SCM_MAX_FD:
                raise SpawnError(
                    f"batch of {len(batch)} needs {len(fds)} fd grants; "
                    f"one SCM_RIGHTS message carries at most "
                    f"{_SCM_MAX_FD} — split the batch")
            request["nfds"] = 3
            TELEMETRY.count("fd_grants", len(fds))
        else:
            for member in batch.members:
                if member.grant() != (0, 1, 2):
                    self._require_fd_transport("batch stdio wiring")
            request["nfds"] = 0
        reply = self._roundtrip(request, fds=fds,
                                timeout=deadline or self._timeout)
        pids = reply.get("pids")
        if pids is None or len(pids) != len(batch):
            raise GatewayError(f"gateway refused batch: {reply}")
        children = [
            ChildProcess(pid, argv=member.argv, strategy="gateway",
                         reaper=self._reap)
            for pid, member in zip(pids, batch.members)]
        return BatchResult(children, strategy="gateway")

    def lease(self, count: int, ttl: float = 10.0) -> dict:
        """Reserve ``count`` rate-limit-exempt admission credits for
        ``ttl`` seconds (provisioned concurrency for a known burst)."""
        reply = self._roundtrip({"op": "lease", "count": count,
                                 "ttl": ttl}, timeout=self._timeout)
        return reply.get("lease", {})

    def stats(self) -> dict:
        """The daemon's stats snapshot (queues, sheds, per-tenant)."""
        reply = self._roundtrip({"op": "stats"}, timeout=self._timeout)
        return reply.get("stats", {})

    def drain(self) -> None:
        """Ask the daemon to drain (refuse new, finish admitted).

        Admin tenants only: a non-admin tenant gets
        :class:`~repro.errors.AuthError`, because drain denies spawn
        service to every other tenant.
        """
        self._roundtrip({"op": "drain"}, timeout=self._timeout)

    def resume(self) -> None:
        """Ask the daemon to leave drain mode (admin tenants only)."""
        self._roundtrip({"op": "drain", "resume": True},
                        timeout=self._timeout)

    def _reap(self, pid: int, flags: int) -> Optional[int]:
        """ChildProcess reaper: wait through the daemon.

        Non-blocking polls answer immediately; a blocking wait parks
        until the daemon's SIGCHLD path reports the exit.
        """
        reply = self._roundtrip({"op": "wait", "pid": pid,
                                 "block": flags == 0})
        status = reply.get("status")
        if status is None:
            return None
        return _encode_status(status)

    def __repr__(self):
        state = ("healthy" if self.healthy
                 else "closed" if not self.connected else "dead")
        return (f"<GatewayClient {self.address!r} tenant={self.tenant} "
                f"{state}>")
