"""The gateway wire protocol: length-prefixed JSON, typed both ways.

A frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding one object.  Requests carry ``op`` (one of
:data:`OPS`) and a client-chosen correlation ``id``; replies echo the
``id`` and carry either the op's result fields or an ``error`` object::

    {"id": 7, "op": "spawn", "argv": ["/bin/true"], "nfds": 0}
    {"id": 7, "pid": 4242}
    {"id": 9, "error": {"code": "rate_limited",
                        "message": "tenant 'a' over 50 req/s",
                        "retry_after": 0.02}}

Everything that can go wrong at the framing layer — truncated or
oversized length prefixes, non-UTF-8 bodies, junk JSON, a body that is
not an object — surfaces as :class:`~repro.errors.GatewayProtocolError`
from :class:`FrameDecoder`, never as a raw ``ValueError`` or
``struct.error``.  The server treats a protocol error as fatal *to that
connection only*: it answers with an error frame when a correlation id
is recoverable, closes the connection, and keeps serving everyone else.

Error objects and the :class:`~repro.errors.GatewayError` hierarchy map
onto each other losslessly in both directions via :func:`encode_error`
and :func:`decode_error`; :data:`ERROR_CODES` is the single table both
directions share, so a new subclass cannot drift out of sync with the
wire.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..errors import (AuthError, GatewayConnectionLost, GatewayError,
                      GatewayProtocolError, Overloaded, RateLimited)

_LEN = struct.Struct("!I")

#: Hard ceiling on one frame's body.  A spawn_batch of a few hundred
#: members is a few hundred KiB of JSON; anything past this is either a
#: corrupt length prefix or an abusive client, and buffering it would
#: let one connection hold the daemon's memory hostage.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Every operation the daemon understands, and the protocol version the
#: ``hello`` handshake advertises.  ``ping`` is the liveness probe: it
#: is answered *before* auth (it leaks nothing beyond "a daemon speaks
#: this protocol here"), so a supervisor can health-check a daemon
#: without holding a tenant token.
OPS = ("hello", "ping", "spawn", "spawn_batch", "lease", "wait", "stats",
       "drain")
PROTOCOL_VERSION = 1

#: code -> exception class, the one authoritative table.  ``decode``
#: walks it by code, ``encode`` by (most-derived) class; the round-trip
#: test in tests/gateway walks it both ways.
ERROR_CODES: Dict[str, Type[GatewayError]] = {
    cls.code: cls
    for cls in (GatewayError, GatewayProtocolError, AuthError,
                RateLimited, Overloaded, GatewayConnectionLost)
}


def encode_frame(obj: dict) -> bytes:
    """One wire frame: length prefix plus the JSON body."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise GatewayProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    return _LEN.pack(len(body)) + body


def encode_error(error: GatewayError, rid: Optional[int] = None) -> dict:
    """The wire object for ``error`` (the reply's ``error`` field).

    Any :class:`GatewayError` subclass encodes to its class ``code``;
    non-gateway exceptions are the caller's bug — wrap them first so
    the wire never carries an unnamed code.
    """
    payload: dict = {"code": error.code, "message": str(error)}
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
    reply: dict = {"error": payload}
    if rid is not None:
        reply["id"] = rid
    return reply


def decode_error(payload: dict) -> GatewayError:
    """The exception a reply's ``error`` object denotes.

    Unknown codes decode to the root :class:`GatewayError` (a newer
    daemon may grow codes an older client has no class for; the client
    still gets a typed, catchable error instead of a crash).
    """
    if not isinstance(payload, dict):
        return GatewayProtocolError(
            f"malformed error payload: {payload!r}")
    code = payload.get("code", "gateway")
    message = payload.get("message", code)
    retry_after = payload.get("retry_after")
    if retry_after is not None:
        try:
            retry_after = float(retry_after)
        except (TypeError, ValueError):
            retry_after = None
    cls = ERROR_CODES.get(code, GatewayError)
    error = cls(str(message), retry_after=retry_after)
    error.code = code  # preserve an unknown code across a re-encode
    return error


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get frames out.

    The decoder owns all framing hazards so the server loop never sees
    them as anything but :class:`GatewayProtocolError`:

    * a length prefix above :attr:`max_frame` (corrupt or abusive) is
      rejected the moment the 4 prefix bytes arrive — the body is never
      buffered;
    * a body that is not valid UTF-8, not valid JSON, or not a JSON
      *object* is rejected when complete;
    * truncation (EOF mid-frame) is the *caller's* question — call
      :meth:`eof` and it answers whether bytes were left dangling.

    After an error the decoder is poisoned: the stream can no longer be
    trusted to align on a frame boundary, so every later call raises
    the same error.  One decoder per connection.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES):
        self._buffer = bytearray()
        self._max_frame = max_frame
        self._error: Optional[GatewayProtocolError] = None

    @property
    def buffered(self) -> int:
        """Bytes received but not yet yielded as frames."""
        return len(self._buffer)

    def _poison(self, message: str) -> GatewayProtocolError:
        self._error = GatewayProtocolError(message)
        self._buffer.clear()
        return self._error

    def feed(self, data: bytes) -> List[dict]:
        """Consume ``data``; return every frame it completed (maybe [])."""
        if self._error is not None:
            raise self._error
        self._buffer.extend(data)
        frames: List[dict] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[dict]:
        if len(self._buffer) < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(self._buffer)
        if length > self._max_frame:
            raise self._poison(
                f"frame length {length} exceeds the {self._max_frame}-byte "
                f"limit (corrupt prefix?)")
        if len(self._buffer) < _LEN.size + length:
            return None
        body = bytes(self._buffer[_LEN.size:_LEN.size + length])
        del self._buffer[:_LEN.size + length]
        try:
            frame = json.loads(body.decode("utf-8"))
        except UnicodeDecodeError:
            raise self._poison("frame body is not valid UTF-8") from None
        except ValueError:
            raise self._poison("frame body is not valid JSON") from None
        if not isinstance(frame, dict):
            raise self._poison(
                f"frame body must be a JSON object, got "
                f"{type(frame).__name__}")
        return frame

    def eof(self) -> None:
        """Declare end of stream; raises if bytes were left mid-frame."""
        if self._error is not None:
            raise self._error
        if self._buffer:
            raise self._poison(
                f"connection closed mid-frame with {len(self._buffer)} "
                f"bytes pending")

    def __iter__(self) -> Iterator[dict]:  # pragma: no cover - convenience
        return iter(())


def check_request(frame: dict) -> Tuple[str, Optional[int]]:
    """Validate a decoded request frame; returns ``(op, id)``.

    Raises :class:`GatewayProtocolError` for a missing or unknown op or
    a non-integer id — with the id echoed back when it *is* usable, so
    the server can still address the error reply.
    """
    rid = frame.get("id")
    if rid is not None and not isinstance(rid, int):
        raise GatewayProtocolError(f"request id must be an integer, "
                                   f"got {rid!r}")
    op = frame.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise GatewayProtocolError(
            f"unknown op {op!r}; this gateway speaks {', '.join(OPS)}")
    return op, rid
