"""GatewaySupervisor: keep one spawn daemon alive and zombie-free.

The gateway daemon is a single point of failure by construction — one
process fronting every tenant's spawns — so PR 11's availability story
is incomplete without an answer to "what happens when the daemon
dies?".  This module is that answer, in three parts:

* **health checks** — the supervisor probes the daemon over the real
  wire with the pre-auth ``ping`` op (plus a cheap liveness check on
  the loop thread), so it detects not just a dead process but a wedged
  one that accepts connections and never answers;
* **bounded restart** — a failed daemon is restarted on the same
  address (the Unix-socket path survives restarts, so resilient
  clients simply reconnect), with exponential backoff between
  consecutive failures so a crash loop cannot become a restart storm;
  after ``max_restarts`` consecutive failures the supervisor gives up
  and reports it, rather than burning CPU forever;
* **orphan reconciliation** — a crashed daemon strands its tenants'
  children (they are the daemon's children; nobody is left to ``wait``
  on them).  Before restarting, the supervisor claims them via
  :meth:`~repro.gateway.server.GatewayServer.take_orphans` and reaps
  every one — polling first, escalating to SIGKILL after
  ``orphan_grace`` — so a daemon crash never leaks a zombie.

Counters: ``daemon_restart`` increments per restart,
``orphans_reaped`` per reconciled child, both visible in
``repro-bench metrics`` and gated by the t9-chaos experiment.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional

from ..errors import GatewayError
from ..obs import TELEMETRY
from .config import GatewayConfig
from .protocol import FrameDecoder, encode_frame
from .server import GatewayServer


def ping_gateway(address, timeout: float = 2.0) -> bool:
    """One wire-level liveness probe: dial, ``ping``, expect a pong.

    Token-free (the daemon answers ``ping`` before auth) and built on
    a throwaway socket, so a supervisor can probe without holding a
    tenant credential or disturbing the shared client channel.
    """
    if address is None:
        return False
    family = (socket.AF_UNIX if isinstance(address, str)
              else socket.AF_INET)
    try:
        with socket.socket(family, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(address)
            sock.sendall(encode_frame({"op": "ping", "id": 0}))
            decoder = FrameDecoder()
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                data = sock.recv(4096)
                if not data:
                    return False
                for frame in decoder.feed(data):
                    return bool(frame.get("pong"))
    except (OSError, GatewayError):
        return False
    return False


class GatewaySupervisor:
    """Run a :class:`GatewayServer` under restart-on-crash supervision.

    ``start()`` boots the daemon and a monitor thread; the monitor
    probes every ``check_interval`` seconds and restarts a dead or
    unresponsive daemon (see the module docstring for the policy).
    ``stop()`` shuts both down and reaps every remaining child.
    Usable as a context manager.
    """

    def __init__(self, config: GatewayConfig, *,
                 check_interval: float = 0.25,
                 ping_timeout: float = 2.0,
                 max_restarts: int = 8,
                 restart_backoff: float = 0.05,
                 restart_backoff_max: float = 2.0,
                 healthy_reset: float = 5.0,
                 orphan_grace: float = 5.0):
        self.config = config
        self._check_interval = check_interval
        self._ping_timeout = ping_timeout
        self._max_restarts = max_restarts
        self._restart_backoff = restart_backoff
        self._restart_backoff_max = restart_backoff_max
        self._healthy_reset = healthy_reset
        self._orphan_grace = orphan_grace
        self._server: Optional[GatewayServer] = None
        self._monitor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._healthy_since = 0.0
        #: Restarts performed over this supervisor's lifetime.
        self.restarts = 0
        #: Children reconciled (reaped) across restarts and shutdown.
        self.orphans_reaped = 0
        #: Set when ``max_restarts`` consecutive failures exhausted the
        #: restart budget; the daemon stays down and clients must rely
        #: on their :class:`~repro.core.policy.SpawnPolicy` ladder.
        self.gave_up = False

    # -- lifecycle -------------------------------------------------------

    @property
    def server(self) -> Optional[GatewayServer]:
        return self._server

    @property
    def address(self):
        """Where clients dial: stable across daemon restarts.

        A Unix path when one is configured; otherwise the TCP
        ``(host, port)`` pair (the *bound* port once the daemon is up,
        which matters when the config asked for port 0).
        """
        if self._server is not None and self._server.unix_path:
            return self._server.unix_path
        if self.config.unix_path is not None:
            return self.config.unix_path
        if self._server is not None and self._server.tcp_port is not None:
            return (self.config.tcp_host, self._server.tcp_port)
        if self.config.tcp_port is not None:
            return (self.config.tcp_host, self.config.tcp_port)
        return None

    def start(self) -> "GatewaySupervisor":
        """Boot the daemon and the monitor thread (idempotent)."""
        with self._lock:
            if self._monitor is not None:
                return self
            self._stop_event.clear()
            self.gave_up = False
            self._consecutive_failures = 0
            if self._server is None:
                self._server = GatewayServer(self.config)
            self._server.start()
            self._healthy_since = time.monotonic()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="gateway-supervisor",
                daemon=True)
            self._monitor.start()
        return self

    def stop(self) -> None:
        """Stop supervising, stop the daemon, reap every child."""
        self._stop_event.set()
        monitor, self._monitor = self._monitor, None
        if monitor is not None and monitor is not threading.current_thread():
            monitor.join(timeout=10.0)
        with self._lock:
            server, self._server = self._server, None
        if server is not None:
            self._reap(list(server.take_orphans().values()))
            server.stop()

    def __enter__(self) -> "GatewaySupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- health -----------------------------------------------------------

    def healthy(self) -> bool:
        """One probe, now: loop thread alive *and* a pong on the wire."""
        server = self._server
        if server is None or not server.running:
            return False
        return ping_gateway(self.address, timeout=self._ping_timeout)

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self._check_interval):
            if self.gave_up:
                return
            try:
                if self.healthy():
                    if (self._consecutive_failures
                            and time.monotonic() - self._healthy_since
                            >= self._healthy_reset):
                        self._consecutive_failures = 0
                    continue
                self._restart()
            except Exception as exc:
                # An unexpected probe/restart error must not end
                # supervision silently: report it and keep ticking.
                TELEMETRY.event("gateway_supervisor_error",
                                error=f"{type(exc).__name__}: {exc}")

    # -- restart ----------------------------------------------------------

    def _restart(self) -> None:
        """One supervised restart: reconcile orphans, back off, reboot."""
        with self._lock:
            if self._stop_event.is_set() or self._server is None:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures > self._max_restarts:
                self.gave_up = True
                TELEMETRY.event("gateway_restart_giveup",
                                restarts=self.restarts)
                return
            server = self._server
            orphans = list(server.take_orphans().values())
            try:
                server.stop()
            except Exception:
                pass
            self._reap(orphans)
            # Bounded restart-storm backoff: exponential in the run of
            # consecutive failures, capped, and interruptible by stop().
            delay = min(self._restart_backoff
                        * (2.0 ** (self._consecutive_failures - 1)),
                        self._restart_backoff_max)
            if self._stop_event.wait(delay):
                return
            try:
                server.start()
            except GatewayError as exc:
                TELEMETRY.event("gateway_restart_failed", error=str(exc))
                return  # next monitor tick retries with more backoff
            self.restarts += 1
            self._healthy_since = time.monotonic()
            TELEMETRY.count("daemon_restart")
            TELEMETRY.event("gateway_restart", restarts=self.restarts)

    # -- orphan reconciliation --------------------------------------------

    def _reap(self, orphans: List[object]) -> None:
        """Wait on every stranded child; escalate to SIGKILL past grace.

        The children were launched by the daemon's executor threads
        inside *this* process (the daemon is an embedded loop, not a
        separate pid), so the handles' own reapers still work after the
        loop died.
        """
        if not orphans:
            return
        remaining: Dict[int, object] = {
            getattr(child, "pid", id(child)): child for child in orphans}
        deadline = time.monotonic() + self._orphan_grace
        while remaining and time.monotonic() < deadline:
            for pid, child in list(remaining.items()):
                try:
                    if child.poll() is not None:
                        remaining.pop(pid, None)
                        self.orphans_reaped += 1
                        TELEMETRY.count("orphans_reaped")
                except Exception:
                    # The handle is unreapable (its service died with
                    # the daemon); escalation below will deal with it.
                    break
            if remaining:
                time.sleep(0.02)
        for pid, child in remaining.items():
            try:
                child.kill()
            except Exception:
                pass
            try:
                child.wait(timeout=2.0)
            except Exception:
                pass
            self.orphans_reaped += 1
            TELEMETRY.count("orphans_reaped")

    def __repr__(self):
        state = ("gave-up" if self.gave_up
                 else "supervising" if self._monitor is not None
                 else "stopped")
        return (f"<GatewaySupervisor {self.address!r} {state} "
                f"restarts={self.restarts} "
                f"orphans_reaped={self.orphans_reaped}>")
