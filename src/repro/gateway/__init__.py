"""repro.gateway — the spawn service as a network-facing daemon.

The paper's complaint is that ``fork`` couples process creation to one
process's private state; :mod:`repro.core` replaces that with explicit
builders, pools, and template zygotes — but as a single-process
*library*.  This package turns the library into a *service*: an asyncio
daemon listening on a Unix socket (and optionally TCP) that multiplexes
many tenants over the same warm spawn machinery.

The pieces:

* :mod:`repro.gateway.protocol` — the length-prefixed JSON wire
  protocol (``hello``/``spawn``/``spawn_batch``/``lease``/``wait``/
  ``stats``/``drain``), an incremental :class:`FrameDecoder` that turns
  arbitrary bytes into frames or typed protocol errors, and the
  two-way mapping between wire error codes and the
  :class:`~repro.errors.GatewayError` hierarchy.
* :mod:`repro.gateway.config` — :class:`TenantConfig` (auth token,
  queue bound, token-bucket rate, weighted-fair share, spawn policy)
  and :class:`GatewayConfig` (listeners, executor width, drain grace).
* :mod:`repro.gateway.server` — :class:`GatewayServer`: per-tenant
  admission control, weighted-fair queueing, token-bucket rate limits,
  bounded queues with load shedding and Retry-After hints, graceful
  drain on SIGTERM, and counters/histograms through :mod:`repro.obs`.
* :mod:`repro.gateway.client` — :class:`GatewayClient`, a synchronous
  pipelined client that self-heals across connection loss (typed
  failures, capped-backoff reconnect with re-auth, re-issued waits),
  and the ``gateway`` launch strategy that lets the same
  :class:`~repro.core.ProcessBuilder` program run against the daemon.
* :mod:`repro.gateway.supervisor` — :class:`GatewaySupervisor`:
  wire-level ``ping`` health checks, bounded restart-on-crash, and
  reconciliation of children a crashed daemon orphaned.

Run a standalone daemon with ``python -m repro.gateway``; see
``docs/GATEWAY.md`` for the protocol spec, the failure-mode catalogue,
and the tuning guide.
"""

from .client import GatewayClient
from .config import GatewayConfig, TenantConfig
from .protocol import (ERROR_CODES, FrameDecoder, MAX_FRAME_BYTES,
                       decode_error, encode_error, encode_frame)
from .server import GatewayServer
from .supervisor import GatewaySupervisor, ping_gateway

__all__ = [
    "ERROR_CODES", "FrameDecoder", "GatewayClient", "GatewayConfig",
    "GatewayServer", "GatewaySupervisor", "MAX_FRAME_BYTES",
    "TenantConfig", "decode_error", "encode_error", "encode_frame",
    "ping_gateway",
]
