"""Gateway configuration: tenants and daemon-wide knobs.

A *tenant* is one customer of the spawn service: an auth token, a
bounded queue, a token-bucket rate limit, a weighted-fair share, and
optionally its own :class:`~repro.core.policy.SpawnPolicy` and launch
strategy.  The daemon multiplexes every tenant over the same warm
pools; these knobs are what keep one noisy tenant from starving the
rest.

Configs load from JSON (``GatewayConfig.from_dict`` /
``from_file``) for the standalone daemon, or are built in code for the
embedded one the ``gateway`` strategy boots.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core.policy import SpawnPolicy
from ..errors import GatewayError

#: The ladder a gateway spawn walks when its tenant names no strategy:
#: same shape as the library's template ladder, because the gateway IS
#: the provisioned-concurrency story served over a socket.
DEFAULT_TENANT_FALLBACK = ("forkserver", "posix_spawn")


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's contract with the gateway.

    Attributes:
        name: tenant identifier (the ``hello`` frame's ``tenant``).
        token: shared-secret auth token (compared in constant time).
        max_queue: bound on queued-but-not-dispatched requests; past
            it the gateway sheds with :class:`~repro.errors.Overloaded`.
        rate: sustained requests/second admitted by the token bucket
            (``None`` = unlimited).
        burst: bucket capacity — how far above ``rate`` a short burst
            may go before :class:`~repro.errors.RateLimited`.
        weight: weighted-fair share; a weight-2 tenant drains twice as
            fast as a weight-1 tenant under contention.
        strategy: launch strategy serving this tenant (default
            ``forkserver-pool``).
        policy: the tenant's :class:`SpawnPolicy` (deadline, retries,
            breakers); ``None`` uses a modest default built by the
            server.
        max_children: bound on live (spawned, unreaped) children;
            ``None`` = unlimited.
        max_waits: bound on concurrent *blocking* ``wait`` ops (each
            parks a daemon thread for the child's whole runtime); past
            it the gateway sheds with :class:`~repro.errors.Overloaded`
            and the client should poll instead.
        admin: whether this tenant may issue the ``drain`` op (flip
            the whole daemon into/out of refuse-new mode).  Ordinary
            tenants get :class:`~repro.errors.AuthError` — one tenant
            must not be able to deny spawn service to the rest.
    """

    name: str
    token: str
    max_queue: int = 64
    rate: Optional[float] = None
    burst: Optional[float] = None
    weight: float = 1.0
    strategy: str = "forkserver-pool"
    policy: Optional[SpawnPolicy] = None
    max_children: Optional[int] = None
    max_waits: int = 64
    admin: bool = False

    def __post_init__(self):
        if not self.name:
            raise GatewayError("tenant needs a name")
        if not self.token:
            raise GatewayError(f"tenant {self.name!r} needs a token")
        if self.max_queue < 1:
            raise GatewayError(
                f"tenant {self.name!r}: max_queue must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise GatewayError(f"tenant {self.name!r}: rate must be > 0")
        if self.burst is not None and self.burst < 1:
            raise GatewayError(f"tenant {self.name!r}: burst must be >= 1")
        if self.weight <= 0:
            raise GatewayError(f"tenant {self.name!r}: weight must be > 0")
        if self.max_waits < 1:
            raise GatewayError(
                f"tenant {self.name!r}: max_waits must be >= 1")
        if self.strategy == "gateway":
            raise GatewayError(
                f"tenant {self.name!r}: a gateway tenant cannot be served "
                f"by the 'gateway' strategy (infinite recursion)")

    @classmethod
    def from_dict(cls, data: dict) -> "TenantConfig":
        policy = data.get("policy")
        if isinstance(policy, dict):
            policy = SpawnPolicy(**policy)
        return cls(
            name=data["name"], token=data["token"],
            max_queue=int(data.get("max_queue", 64)),
            rate=data.get("rate"), burst=data.get("burst"),
            weight=float(data.get("weight", 1.0)),
            strategy=data.get("strategy", "forkserver-pool"),
            policy=policy,
            max_children=data.get("max_children"),
            max_waits=int(data.get("max_waits", 64)),
            admin=bool(data.get("admin", False)))


@dataclass
class GatewayConfig:
    """Daemon-wide knobs: where to listen and how much to run at once.

    Attributes:
        unix_path: Unix-socket path to listen on (``None`` = no Unix
            listener).  Only Unix connections can grant stdio fds.
        tcp_host/tcp_port: TCP listener (``tcp_port=None`` disables).
        tenants: name -> :class:`TenantConfig`.
        max_inflight: spawns executing concurrently across all tenants
            (the dispatch semaphore — the knob overload presses on).
        executor_threads: worker threads running the blocking spawn
            ladder (defaults to ``max_inflight``).
        drain_grace: seconds a SIGTERM drain waits for in-flight work
            before the daemon gives up and exits anyway.
        retry_after_hint: base Retry-After seconds for shed requests
            (scaled by queue pressure).
        accept_backlog: listen(2) backlog for both listeners.
    """

    unix_path: Optional[str] = None
    tcp_host: str = "127.0.0.1"
    tcp_port: Optional[int] = None
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    max_inflight: int = 32
    executor_threads: Optional[int] = None
    drain_grace: float = 30.0
    retry_after_hint: float = 0.05
    accept_backlog: int = 128

    def __post_init__(self):
        if self.unix_path is None and self.tcp_port is None:
            raise GatewayError(
                "gateway needs at least one listener (unix_path or "
                "tcp_port)")
        if self.max_inflight < 1:
            raise GatewayError("max_inflight must be >= 1")
        if self.drain_grace < 0:
            raise GatewayError("drain_grace must be >= 0")
        if not self.tenants:
            raise GatewayError("gateway needs at least one tenant")

    @classmethod
    def from_dict(cls, data: dict) -> "GatewayConfig":
        tenants = {}
        for tenant in data.get("tenants", ()):
            config = TenantConfig.from_dict(tenant)
            if config.name in tenants:
                raise GatewayError(f"duplicate tenant {config.name!r}")
            tenants[config.name] = config
        return cls(
            unix_path=data.get("unix_path"),
            tcp_host=data.get("tcp_host", "127.0.0.1"),
            tcp_port=data.get("tcp_port"),
            tenants=tenants,
            max_inflight=int(data.get("max_inflight", 32)),
            executor_threads=data.get("executor_threads"),
            drain_grace=float(data.get("drain_grace", 30.0)),
            retry_after_hint=float(data.get("retry_after_hint", 0.05)),
            accept_backlog=int(data.get("accept_backlog", 128)))

    @classmethod
    def from_file(cls, path: str) -> "GatewayConfig":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise GatewayError(f"cannot read gateway config {path!r}: "
                               f"{exc}") from exc
        except ValueError as exc:
            raise GatewayError(f"gateway config {path!r} is not valid "
                               f"JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise GatewayError(f"gateway config {path!r} must be a JSON "
                               f"object")
        return cls.from_dict(data)


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` deep.

    :meth:`take` admits a request (consuming one token) or answers with
    the seconds until a token will exist — the Retry-After hint.  The
    clock is injectable so tests run on virtual time.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = None):
        import time as _time
        if rate <= 0:
            raise GatewayError(f"token bucket rate must be > 0: {rate}")
        self._rate = float(rate)
        self._burst = max(1.0, float(burst))
        self._clock = clock or _time.monotonic
        self._tokens = self._burst
        self._stamp = self._clock()
        self._lock = threading.Lock()

    def take(self) -> Tuple[bool, float]:
        """``(admitted, retry_after)`` for one request right now."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self._burst, self._tokens + (now - self._stamp) * self._rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self._rate

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens
