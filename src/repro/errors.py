"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch everything from one root.  The simulated kernel
additionally reports POSIX-style failures through :class:`SimOSError`,
which carries a symbolic errno (``"ENOMEM"``, ``"EBADF"``, ...) so tests
can assert on the exact failure mode without importing the host's
``errno`` values.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class SpawnError(ReproError):
    """A real-OS process could not be created.

    Raised by :mod:`repro.core` when every applicable strategy failed or
    when the request itself is invalid (e.g. an empty argv).
    """


class SpawnTimeout(SpawnError):
    """A spawn request outlived its deadline.

    Raised by the forkserver wire protocol when a
    :class:`~repro.core.policy.SpawnPolicy` deadline (or an explicit
    per-request one) expires before the helper replies.  On a pipelined
    channel an expired request *poisons* the channel — the helper may be
    wedged mid-frame — so the server is aborted and replaced rather than
    trusted again.
    """


class GatewayError(ReproError):
    """Root for spawn-gateway failures (client- and server-side).

    Every public entry point of :mod:`repro.gateway` raises only
    descendants of this class (which is itself a :class:`ReproError`),
    and each subclass carries a stable wire ``code`` so a protocol
    error frame and the exception it becomes round-trip losslessly —
    see :data:`repro.gateway.protocol.ERROR_CODES`.
    """

    #: Stable protocol error code for this class (wire ``error.code``).
    code = "gateway"

    def __init__(self, message: str = "", *,
                 retry_after: "float | None" = None):
        super().__init__(message or self.code)
        #: Seconds the client should wait before retrying (``None`` when
        #: retrying sooner is fine); populated for backpressure errors.
        self.retry_after = retry_after


class GatewayProtocolError(GatewayError):
    """A malformed frame or request the gateway could not interpret.

    Covers oversized or truncated length prefixes, non-UTF-8 or junk
    JSON bodies, missing required fields and unknown ops.  The framing
    layer raises it instead of letting codec exceptions (``ValueError``,
    ``UnicodeDecodeError``, ``struct.error``) leak to callers.
    """

    code = "protocol"


class AuthError(GatewayError):
    """The connection is not authenticated (bad tenant or token).

    Raised for an unknown tenant name, a wrong token, or an operation
    attempted before the ``hello`` handshake.
    """

    code = "auth"


class RateLimited(GatewayError):
    """The tenant exceeded its token-bucket rate limit.

    ``retry_after`` carries the seconds until the bucket refills enough
    to admit one request — the wire protocol's Retry-After hint.
    """

    code = "rate_limited"


class Overloaded(GatewayError):
    """The gateway shed the request (queue full, or draining).

    Backpressure made visible: the tenant's bounded queue is full, or
    the daemon is in SIGTERM drain and refuses new work.
    ``retry_after`` hints when capacity is expected back.
    """

    code = "overloaded"


class GatewayConnectionLost(GatewayError):
    """The connection to the gateway died with requests in flight.

    Raised client-side when the daemon hangs up, resets the connection,
    or the stream breaks mid-frame.  Every pending request on the
    channel fails with this type, so callers can distinguish "the
    daemon refused this request" (any other :class:`GatewayError`) from
    "nobody knows what happened to this request" — the ambiguous
    failure that must never be blindly retried for non-idempotent ops.
    """

    code = "conn_lost"


class FaultPlanError(ReproError):
    """A fault-injection plan could not be parsed or validated.

    Raised by :mod:`repro.faults` for unknown fault kinds, malformed
    JSON plans, or a ``REPRO_FAULTS`` environment value that names a
    missing file.
    """


class ForkSafetyError(ReproError):
    """A fork-safety invariant was violated.

    Raised by :mod:`repro.core.safety` when a guarded ``fork`` is
    attempted from an environment the guard considers unsafe (live
    threads, held locks, dirty stdio buffers) and the policy is
    ``"raise"``.
    """


class SimError(ReproError):
    """Root for simulated-kernel errors that are *not* syscall failures.

    These indicate misuse of the simulator API (e.g. operating on a dead
    process object) rather than an error a simulated program could
    legitimately observe.
    """


class SimOSError(SimError):
    """A simulated syscall failed with a POSIX-style error.

    Attributes:
        errno_name: symbolic errno such as ``"ENOMEM"`` or ``"ECHILD"``.
    """

    def __init__(self, errno_name: str, message: str = ""):
        self.errno_name = errno_name
        super().__init__(f"[{errno_name}] {message}" if message else errno_name)


class SimMemoryError(SimOSError):
    """Out of simulated physical memory or commit charge (``ENOMEM``)."""

    def __init__(self, message: str = "out of simulated memory"):
        super().__init__("ENOMEM", message)


class SimSegfault(SimError):
    """A simulated program touched an unmapped or protected address.

    Mirrors a SIGSEGV delivered for an invalid access.  Carries the
    faulting address and the kind of access that failed.
    """

    def __init__(self, address: int, access: str = "read"):
        self.address = address
        self.access = access
        super().__init__(f"segfault: {access} at {address:#x}")


class DeadlockError(SimError):
    """The deterministic scheduler found no runnable task while tasks block.

    This is how the simulator surfaces the paper's fork-with-threads
    deadlock: the child waits forever on a lock whose owner thread does
    not exist in the child.
    """


class LintError(ReproError):
    """The static analyzer could not process an input (bad path, syntax)."""


class BenchError(ReproError):
    """A benchmark harness precondition failed (unknown experiment, ...)."""


class ObsError(ReproError):
    """A telemetry precondition failed (bad sink, empty histogram, ...)."""
