"""repro.faults — fault injection for the spawn stack.

The chaos counterpart to :mod:`repro.obs`: where telemetry makes every
spawn *visible*, this package makes every spawn *breakable on purpose*,
so the resilience policies in :mod:`repro.core.policy` are proven by
tests instead of assumed.

Three ways to activate a plan:

* **per-test** — ``with FAULTS.active(FaultPlan().add("kill_helper")):``
* **environment** — ``REPRO_FAULTS=plan.json`` (or inline JSON) arms the
  plan in any process that imports :mod:`repro.faults`;
* **CLI** — ``repro-bench run t5-throughput --faults plan.json``.

See :mod:`repro.faults.plan` for the fault taxonomy and the JSON plan
format, and ``docs/FORKSERVER.md`` ("Failure modes and recovery") for
how each fault is expected to resolve.
"""

from __future__ import annotations

import os

from .inject import FAULTS, FaultInjector
from .plan import (FRAME_KINDS, GATEWAY_SITE_KINDS, Fault, FaultPlan,
                   KIND_POINTS, POINTS)

__all__ = [
    "FAULTS", "FRAME_KINDS", "GATEWAY_SITE_KINDS", "Fault",
    "FaultInjector", "FaultPlan", "KIND_POINTS", "POINTS",
    "install_env_plan",
]

#: Environment variable naming a plan file (or holding inline JSON).
ENV_VAR = "REPRO_FAULTS"


def install_env_plan(environ=None) -> bool:
    """Activate the plan named by :data:`ENV_VAR`, if set.

    Returns True when a plan was activated.  Raises
    :class:`~repro.errors.FaultPlanError` on a malformed value — an
    operator who set the variable wants loud failure, not silent
    no-faults.
    """
    value = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not value:
        return False
    FAULTS.activate(FaultPlan.from_env_value(value))
    return True


install_env_plan()
