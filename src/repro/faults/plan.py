"""Fault plans: a declarative taxonomy of the ways a spawn path dies.

The paper's complaint about ``fork()`` is that its failure modes are
*implicit* — a child inherits broken locks and half-written buffers and
nobody finds out until production.  A spawn *service* must do better:
every way the service can fail should be nameable, injectable on
demand, and covered by a test that proves the stack recovers.

A :class:`FaultPlan` is a list of :class:`Fault` records.  Each fault
names a *kind* from the taxonomy below, an *injection point* (defaulted
per kind), and arming counters (``after`` spawns to skip, ``times`` to
fire).  Plans are plain data: they round-trip through JSON so the same
plan drives a unit test, a ``REPRO_FAULTS`` environment variable, or a
``repro-bench run --faults plan.json`` soak.

==================  ====================  ==================================
kind                default point         effect when armed
==================  ====================  ==================================
kill_helper         forkserver.request    SIGKILL the helper after the
                                          request frame is on the wire —
                                          the classic mid-request crash
truncate_frame      forkserver.frame      send only a prefix of the wire
                                          frame; the helper wedges mid-read
corrupt_frame       forkserver.frame      keep the length header, trash the
                                          JSON body; the helper bails out
drop_fd_grant       forkserver.frame      strip the SCM_RIGHTS ancillary
                                          data from a spawn request
stall_helper        helper                the helper sleeps ``seconds``
                                          before handling each request
delay_sigchld       helper                the helper sleeps ``seconds``
                                          before reaping exited children
refuse_exec         strategy.launch       the launch raises SpawnError
                                          (point ``helper``: the helper
                                          refuses the spawn on the wire)
exhaust_fds         strategy.launch       the launch raises OSError(EMFILE)
                                          (point ``builder.pipe``: pipe
                                          allocation fails instead)
conn_reset          gateway.frame         the client's gateway connection
                                          resets before the frame is sent
partial_frame       gateway.frame         the client sends half a frame,
                                          then half-closes the connection
stall_conn          gateway.frame         the client stalls ``seconds``
                                          before each outgoing frame
drop_reply          gateway.reply         the daemon silently drops one
                                          reply frame (the client's
                                          request deadline must save it)
garbage_reply       gateway.reply         the daemon answers with bytes
                                          that are not a protocol frame
refuse_accept       gateway.accept        the daemon hangs up a freshly
                                          accepted connection
kill_daemon         gateway.daemon        the daemon crashes mid-request
                                          (listeners, connections and
                                          queued work all die; children
                                          are orphaned for a supervisor
                                          to reconcile)
==================  ====================  ==================================

Client-side points fire through :data:`repro.faults.FAULTS`; the two
``helper`` kinds (plus ``refuse_exec`` when pointed there) are compiled
into a ``REPRO_HELPER_FAULTS`` environment spec that
:class:`~repro.core.forkserver.ForkServer` hands to helpers it starts
*while the plan is active*.  The ``gateway.*`` family fires inside
:mod:`repro.gateway` — client-side kinds in
:class:`~repro.gateway.client.GatewayClient`'s send path, server-side
kinds on the daemon's accept/reply/dispatch paths — and is what the
t9-chaos availability gauntlet drives.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import FaultPlanError

#: kind -> default injection point.
KIND_POINTS: Dict[str, str] = {
    "kill_helper": "forkserver.request",
    "truncate_frame": "forkserver.frame",
    "corrupt_frame": "forkserver.frame",
    "drop_fd_grant": "forkserver.frame",
    "stall_helper": "helper",
    "delay_sigchld": "helper",
    "refuse_exec": "strategy.launch",
    "exhaust_fds": "strategy.launch",
    "conn_reset": "gateway.frame",
    "partial_frame": "gateway.frame",
    "stall_conn": "gateway.frame",
    "drop_reply": "gateway.reply",
    "garbage_reply": "gateway.reply",
    "refuse_accept": "gateway.accept",
    "kill_daemon": "gateway.daemon",
}

#: Every injection point compiled into the stack (documentation and
#: validation; plans may only target these).
POINTS = (
    "forkserver.frame",    # ForkServer._send, one wire frame
    "forkserver.request",  # ForkServer._roundtrip, frame sent, reply pending
    "forkserver.spawn",    # ForkServer.spawn / spawn_batch entry
    "pool.dispatch",       # ForkServerPool.spawn, per dispatch attempt
    "pool.batch",          # ForkServerPool.spawn_batch, per batch dispatch
    "strategy.launch",     # every registered Strategy.launch entry
    "builder.pipe",        # ProcessBuilder pipe allocation
    "builder.spawn",       # ProcessBuilder.spawn entry
    "helper",              # inside the helper process (via env spec)
    "gateway.connect",     # GatewayClient dial, before the hello
    "gateway.frame",       # GatewayClient._roundtrip, one outgoing frame
    "gateway.reply",       # GatewayServer._send, one outgoing reply
    "gateway.accept",      # GatewayServer._on_accept, per new connection
    "gateway.daemon",      # GatewayServer._handle_frame, the daemon itself
)

#: Kinds whose effect is a mutation of the outgoing wire frame.
FRAME_KINDS = frozenset({"truncate_frame", "corrupt_frame", "drop_fd_grant"})

#: Gateway kinds the injection *site* interprets (socket surgery, reply
#: suppression, daemon crash) rather than :meth:`FaultInjector.fire`
#: applying a generic effect.  Grouped with :data:`FRAME_KINDS` for the
#: "don't also sleep" exemption in the injector.
GATEWAY_SITE_KINDS = frozenset({
    "conn_reset", "partial_frame", "drop_reply", "garbage_reply",
    "refuse_accept", "kill_daemon"})


@dataclass
class Fault:
    """One injectable fault: what breaks, where, and how many times.

    Attributes:
        kind: taxonomy entry from :data:`KIND_POINTS`.
        point: injection point; defaults to the kind's canonical point.
        after: matching fires to skip before arming (0 = immediately).
        times: how many times to fire; ``None`` means every time.
        seconds: sleep length for the stall/delay kinds.
        strategy: only fire when the site reports this strategy name.
    """

    kind: str
    point: Optional[str] = None
    after: int = 0
    times: Optional[int] = 1
    seconds: float = 0.0
    strategy: Optional[str] = None
    # Mutable arming state (the registry decrements under its lock).
    remaining_skips: int = field(init=False, repr=False, default=0)
    remaining_fires: Optional[int] = field(init=False, repr=False,
                                           default=None)

    def __post_init__(self):
        if self.kind not in KIND_POINTS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{', '.join(sorted(KIND_POINTS))}")
        if self.point is None:
            self.point = KIND_POINTS[self.kind]
        if self.point not in POINTS:
            raise FaultPlanError(
                f"unknown injection point {self.point!r}; known points: "
                f"{', '.join(POINTS)}")
        if self.after < 0:
            raise FaultPlanError(f"fault 'after' must be >= 0: {self.after}")
        if self.times is not None and self.times < 0:
            raise FaultPlanError(f"fault 'times' must be >= 0: {self.times}")
        if self.seconds < 0:
            raise FaultPlanError(
                f"fault 'seconds' must be >= 0: {self.seconds}")
        self.remaining_skips = self.after
        self.remaining_fires = self.times

    # -- matching and arming (called by the registry, under its lock) ------

    def matches(self, point: str, strategy: Optional[str]) -> bool:
        """Whether this fault watches ``point`` (and ``strategy``)."""
        if self.point != point:
            return False
        if self.strategy is not None and self.strategy != strategy:
            return False
        return True

    def arm(self) -> bool:
        """Advance the counters; True when this occurrence fires."""
        if self.remaining_skips > 0:
            self.remaining_skips -= 1
            return False
        if self.remaining_fires is None:
            return True
        if self.remaining_fires == 0:
            return False
        self.remaining_fires -= 1
        return True

    @property
    def exhausted(self) -> bool:
        """Whether this fault can never fire again."""
        return self.remaining_fires == 0

    # -- frame mutation (interpreted at ``forkserver.frame``) --------------

    def mutate_frame(self, message: bytes, fds: Sequence[int]):
        """Apply a frame-kind's damage to an outgoing wire frame."""
        if self.kind == "truncate_frame":
            return message[:max(1, len(message) // 2)], list(fds)
        if self.kind == "corrupt_frame":
            # Keep the length header intact so the helper reads the full
            # body and discovers the damage at the JSON layer.
            damaged = bytearray(message)
            for i in range(4, len(damaged)):
                damaged[i] ^= 0xFF
            return bytes(damaged), list(fds)
        if self.kind == "drop_fd_grant":
            return message, []
        return message, list(fds)

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> dict:
        out = {"kind": self.kind, "point": self.point}
        if self.after:
            out["after"] = self.after
        if self.times != 1:
            out["times"] = self.times
        if self.seconds:
            out["seconds"] = self.seconds
        if self.strategy is not None:
            out["strategy"] = self.strategy
        return out


class FaultPlan:
    """An ordered set of faults, activatable as one unit.

    Build fluently::

        plan = (FaultPlan()
                .add("kill_helper")
                .add("stall_helper", seconds=0.2, times=None))

    or load from JSON (``{"faults": [{"kind": ..., ...}, ...]}``) via
    :meth:`from_json` / :meth:`from_file` / :meth:`from_env_value`.
    """

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    def add(self, kind: str, **kwargs) -> "FaultPlan":
        """Append a fault; returns the plan for chaining."""
        self.faults.append(Fault(kind, **kwargs))
        return self

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError(
                "a fault plan is an object with a 'faults' list")
        faults = []
        for entry in data["faults"]:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultPlanError(
                    f"each fault needs at least a 'kind': {entry!r}")
            known = {"kind", "point", "after", "times", "seconds", "strategy"}
            extra = set(entry) - known
            if extra:
                raise FaultPlanError(
                    f"unknown fault fields {sorted(extra)} in {entry!r}")
            faults.append(Fault(**entry))
        return cls(faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") \
                from exc
        return cls.from_json(text)

    @classmethod
    def from_env_value(cls, value: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value: inline JSON or a file path."""
        value = value.strip()
        if value.startswith("{"):
            return cls.from_json(value)
        return cls.from_file(value)

    def as_dict(self) -> dict:
        return {"faults": [fault.as_dict() for fault in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    # -- helper-side compilation ------------------------------------------

    def helper_spec(self) -> str:
        """Render the ``point == "helper"`` faults as an env spec.

        Format: comma-separated ``kind:seconds:times:after`` entries,
        with ``times`` ``-1`` meaning unlimited.  Parsed by the helper
        program, which keeps its own arming counters.
        """
        entries = []
        for fault in self.faults:
            if fault.point != "helper":
                continue
            times = -1 if fault.times is None else fault.times
            entries.append(
                f"{fault.kind}:{fault.seconds:g}:{times}:{fault.after}")
        return ",".join(entries)

    def __repr__(self):
        kinds = ",".join(fault.kind for fault in self.faults)
        return f"<FaultPlan [{kinds}]>"
