"""The fault injector: one process-wide switch the spawn stack consults.

Injection points compiled into the stack call
``FAULTS.fire("point.name", **context)`` on their hot path.  With no
plan active that is one attribute read — cheap enough to leave in
production builds, which is the point: the *same* code path that serves
traffic is the one the chaos suite breaks on purpose.

``fire`` applies the *generic* fault effects itself (raise, sleep,
kill) and returns the matched :class:`~repro.faults.plan.Fault` so
sites with richer context — the forkserver's frame writer — can apply
kind-specific damage such as truncating the frame or dropping the
SCM_RIGHTS grant.
"""

from __future__ import annotations

import contextlib
import errno
import os
import signal
import threading
import time
from typing import List, Optional, Tuple

from ..errors import SpawnError
from .plan import FRAME_KINDS, GATEWAY_SITE_KINDS, Fault, FaultPlan

#: Kinds whose effect is applied by the injection site, not by
#: :meth:`FaultInjector.fire` — they are returned untouched (and a
#: stray ``seconds`` on them does not also sleep the hot path).
_SITE_KINDS = FRAME_KINDS | GATEWAY_SITE_KINDS


class FaultInjector:
    """Holds the active :class:`FaultPlan` and arbitrates firing.

    Thread-safe: arming counters advance under a lock, so concurrent
    spawns cannot double-fire a ``times=1`` fault.  The ``fired`` log
    records every (point, kind) that actually fired — chaos tests use
    it to assert the fault they planned is the one that happened.
    """

    def __init__(self):
        self._plan: Optional[FaultPlan] = None
        self._lock = threading.Lock()
        self._fired: List[Tuple[str, str]] = []

    # -- plan lifecycle ----------------------------------------------------

    @property
    def plan(self) -> Optional[FaultPlan]:
        return self._plan

    @property
    def fired(self) -> List[Tuple[str, str]]:
        """Copy of the (point, kind) pairs that have fired so far."""
        with self._lock:
            return list(self._fired)

    def activate(self, plan: FaultPlan) -> FaultPlan:
        """Install ``plan`` (replacing any active one); clears the log."""
        with self._lock:
            self._plan = plan
            self._fired = []
        return plan

    def deactivate(self) -> Optional[FaultPlan]:
        """Remove the active plan; returns it (or ``None``)."""
        with self._lock:
            plan, self._plan = self._plan, None
        return plan

    @contextlib.contextmanager
    def active(self, plan: FaultPlan):
        """``with FAULTS.active(plan):`` — scoped activation."""
        self.activate(plan)
        try:
            yield plan
        finally:
            self.deactivate()

    # -- the hot-path entry point -----------------------------------------

    def fire(self, point: str, **context) -> Optional[Fault]:
        """Fire the first armed fault watching ``point``, if any.

        Generic effects applied here:

        * ``refuse_exec`` — raises :class:`SpawnError`;
        * ``exhaust_fds`` — raises ``OSError(EMFILE)``;
        * ``kill_helper`` — SIGKILLs ``context["helper_pid"]``;
        * any fault with ``seconds`` set sleeps first (a client-side
          stall, e.g. ``stall_helper`` pointed at ``pool.dispatch``).

        Frame-mutation kinds are returned untouched for the caller to
        interpret via :meth:`Fault.mutate_frame`; the gateway family
        (``conn_reset``, ``drop_reply``, ``kill_daemon``, ...) is
        likewise interpreted by its injection site, which owns the
        socket or daemon the fault needs.
        """
        plan = self._plan
        if plan is None:
            return None
        strategy = context.get("strategy")
        with self._lock:
            if self._plan is not plan:
                return None
            fault = None
            for candidate in plan.faults:
                if candidate.matches(point, strategy) and candidate.arm():
                    fault = candidate
                    break
            if fault is None:
                return None
            self._fired.append((point, fault.kind))
        if fault.seconds and fault.kind not in _SITE_KINDS:
            time.sleep(fault.seconds)
        if fault.kind == "kill_helper":
            pid = context.get("helper_pid")
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        elif fault.kind == "refuse_exec":
            raise SpawnError(
                f"injected fault at {point}: exec refused"
                + (f" (strategy {strategy})" if strategy else ""))
        elif fault.kind == "exhaust_fds":
            raise OSError(errno.EMFILE,
                          f"injected fault at {point}: "
                          f"file descriptor table exhausted")
        return fault

    # -- helper-side compilation ------------------------------------------

    def helper_spec(self) -> str:
        """The active plan's helper-side faults as an env spec string.

        :class:`~repro.core.forkserver.ForkServer` calls this when it
        starts a helper; an empty string means no helper faults.
        """
        plan = self._plan
        return plan.helper_spec() if plan is not None else ""


#: The process-wide injector every compiled-in injection point uses.
FAULTS = FaultInjector()
